//! The in-process threaded-code backend ([`crate::EngineKind::Threaded`]).
//!
//! A lowering pass ([`lower`]) pre-decodes each task's encoded unit
//! range from the flat execution image into a dense stream of
//! pre-resolved handler records ([`TInstr`]): a monomorphized handler
//! function pointer specialized per (op × destination width class ×
//! operand signedness), with every operand reference resolved at
//! lowering time into one flat arena of `[state | scratch | consts]`
//! words. The hot loop ([`run_records`]) is then a bare indirect-call
//! chain — no opcode decode, no operand-space dispatch, no width
//! re-checks, and no sign-extension branches:
//!
//! * the three operand spaces collapse into arena offsets, so the
//!   interpreter's per-operand `space` match disappears;
//! * sign extension becomes a branchless pair of shifts by a
//!   *precomputed* per-operand amount (`0` for unsigned or full-width
//!   operands — the identity), replacing the interpreter's per-read
//!   meta-byte tests;
//! * destination masking is a const-generic specialization (`MASK`),
//!   picked once at lowering from the destination width;
//! * immediate-shift amounts are range-checked at lowering
//!   (`imm ≥ 64` lowers straight to a zero-store handler), and the
//!   fused two-unit encodings (`Mux`, compare→mux) fold their
//!   extension unit into a single record.
//!
//! Multi-word instructions keep their [`crate::image::Op::Wide`] side
//! table: [`h_wide`] splits the arena back into the classic
//! state/scratch/const views and calls the mid-level interpreter, so
//! wide semantics stay bit-identical by construction.
//!
//! Three further lowering-time transforms squeeze the remaining
//! dispatch overhead:
//!
//! * **terminal-record folding**: when a combinational task's last
//!   record writes the task output directly, the epilogue's extra
//!   load-compare-store disappears (`TTask::fold_out`, the `O` const
//!   dimension on every handler);
//! * **accumulator threading**: each handler returns the value it
//!   stored, and consumers whose operand is the immediately preceding
//!   destination read the accumulator register instead of the arena
//!   (the `A`/`B` const dimensions);
//! * **dispatch fusion**: runs of records drawn from a tiny micro-op
//!   alphabet ([`MopKind`]: narrow `Bits`/`Add`/`Xor`/`And`/`Or`/`Cat`,
//!   98%+ of all records on the paper suite) are grouped at lowering
//!   into composite handlers ([`h_fuse2`]…[`h_fuse4`], plus a
//!   period-2 repeat form [`h_fuse_rep`] for long alternating runs),
//!   cutting indirect-call count ~3×. Fused micro-ops read operands
//!   from the arena — stores are never elided, so the arena is always
//!   current — which lets *any* adjacent fusable records fuse, not
//!   just accumulator chains. The motivation is indirect-branch
//!   predictor capacity: a dispatch stream of tens of thousands of
//!   distinct call sites exceeds the BTB/ITA budget, and fewer,
//!   fatter handlers both shrink the stream and give the compiler
//!   straight-line bodies to schedule.
//!
//! The sweep ([`sweep`]) mirrors [`crate::executor::sweep_essential`]
//! exactly — same examination accounting, same store-and-activate
//! epilogue, same commit machinery — so every semantic counter is
//! identical to the essential engine's (pinned by the threaded
//! bit-invisibility proptest).

use crate::compile::{Compiled, Instr, TaskKind};
use crate::counters::Counters;
use crate::exec::{self, Ctx, MemStore};
use crate::executor::{self, ActiveBits};
use crate::image::{EInstr, Op, META_SIGNED, OFF_MASK, SPACE_SHIFT};
use crate::storage::{MemArena, Slot, Space};
use std::time::Duration;

/// A pre-resolved handler: the only indirection left in the hot loop.
/// The third argument and the return value thread the accumulator —
/// the previous record's computed value — through the dispatch loop in
/// a register, so a dependent record reads it without waiting on the
/// store-to-load forward of its producer's arena write.
type Handler = fn(&mut TCtx<'_>, &TInstr, u64) -> u64;

/// One pre-resolved handler record. Operand fields are flat arena
/// offsets (or immediates, per the handler); `sa`/`sb`/`sea`/`seb` are
/// precomputed sign-extension shift amounts (0 = identity) and `wd`
/// the destination width for the masking specializations.
#[derive(Clone, Copy)]
pub(crate) struct TInstr {
    handler: Handler,
    dst: u32,
    a: u32,
    b: u32,
    ea: u32,
    eb: u32,
    sa: u8,
    sb: u8,
    sea: u8,
    seb: u8,
    wd: u8,
}

/// One lowered task: its record range plus the eval epilogue metadata
/// (a pre-resolved mirror of [`crate::compile::Task`], inputs dropped).
#[derive(Clone, Copy)]
struct TTask {
    /// Dispatch range into [`ThreadedProg::dispatch`].
    rec: (u32, u32),
    is_comb: bool,
    /// The task's terminal record was folded into its store-if-changed
    /// epilogue: it writes the out slot directly and leaves the change
    /// test in [`TCtx::changed`], so the separate store pass is skipped.
    fold_out: bool,
    /// `result == out`: value computed in place, treat as changed.
    alias: bool,
    branchless: bool,
    /// Arena offset of the result value.
    result: u32,
    /// Arena offset of the persistent out slot.
    out: u32,
    out_words: u32,
    act: (u32, u32),
}

/// A lowered program: the record stream plus per-supernode task ranges
/// and the combined-arena geometry.
pub(crate) struct ThreadedProg {
    /// Every lowered record, one per image unit — what fused dispatch
    /// records index into ([`TCtx::recs`]).
    pub(crate) records: Vec<TInstr>,
    /// The dispatch stream the hot loop walks: fusable record groups
    /// collapsed into composite records, the rest copied verbatim.
    dispatch: Vec<TInstr>,
    ttasks: Vec<TTask>,
    /// Task index ranges into `ttasks` per supernode.
    sn_tasks: Vec<(u32, u32)>,
    /// Per-supernode counter constants `(node_evals, instrs, fused)`:
    /// a fired supernode runs all its tasks unconditionally, so the
    /// per-task counter contributions sum to a lowering-time constant
    /// and the hot loop pays three adds per supernode instead of three
    /// per task.
    sn_counts: Vec<(u32, u32, u32)>,
    /// Words of persistent state (the arena prefix).
    pub(crate) state_words: u32,
    /// Arena offset where the const pool starts (scratch ends).
    pub(crate) const_base: u32,
    /// Total arena size: `state + scratch + consts`.
    pub(crate) arena_words: usize,
    /// Wall-clock time the lowering pass took.
    pub(crate) lowering_time: Duration,
}

impl ThreadedProg {
    /// Number of handler records in the lowered stream.
    #[cfg(test)]
    fn num_records(&self) -> usize {
        self.records.len()
    }
}

/// Execution context of the threaded hot loop: the combined arena plus
/// the side tables the rare handlers need.
pub(crate) struct TCtx<'a> {
    /// The combined `[state | scratch | consts]` arena.
    pub mem: &'a mut [u64],
    pub mems: &'a [MemArena],
    /// Multi-word side table ([`h_wide`] targets).
    pub wide: &'a [Instr],
    /// The full original record stream ([`ThreadedProg::records`]):
    /// fused dispatch records hold index ranges into it.
    pub recs: &'a [TInstr],
    pub state_words: u32,
    pub const_base: u32,
    /// Change flag set by a task's terminal folded record (`O = true`
    /// handler variants): whether the out slot's value changed. Only
    /// meaningful right after a `fold_out` task's records ran.
    pub changed: bool,
}

impl TCtx<'_> {
    /// Raw arena read.
    ///
    /// Bounds checks are elided: every offset a handler reads through
    /// was produced by `lower`'s resolve closures, which assert it
    /// against the arena geometry once, at lowering time. Keeping the
    /// checks out of the hot loop is worth ~15% end to end.
    #[inline(always)]
    #[allow(unsafe_code)]
    fn rd(&self, p: u32) -> u64 {
        debug_assert!((p as usize) < self.mem.len());
        // SAFETY: `p < arena_words` asserted at lowering (see `lower`).
        unsafe { *self.mem.get_unchecked(p as usize) }
    }

    /// Arena read sign-extended by a precomputed shift (0 = identity).
    #[inline(always)]
    fn rd_sh(&self, p: u32, sh: u8) -> u64 {
        (((self.rd(p) << sh) as i64) >> sh) as u64
    }

    /// Raw arena write (destinations resolve into `state|scratch`,
    /// asserted at lowering like the read offsets).
    #[inline(always)]
    #[allow(unsafe_code)]
    fn wr_raw(&mut self, p: u32, v: u64) {
        debug_assert!((p as usize) < self.mem.len());
        // SAFETY: `p < const_base <= arena_words` asserted at lowering.
        unsafe {
            *self.mem.get_unchecked_mut(p as usize) = v;
        }
    }

    /// Destination write, masked per the `MASK` specialization. The
    /// `OUT` variants are a task's terminal record folded into its
    /// store-if-changed epilogue: `dst` is the persistent out slot and
    /// the change test lands in [`TCtx::changed`]. (Writing
    /// unconditionally instead of only-on-change leaves the same value
    /// in memory, so only the flag needs computing.)
    #[inline(always)]
    fn wr<const MASK: bool, const OUT: bool>(&mut self, r: &TInstr, v: u64) -> u64 {
        let v = if MASK { v & ((1u64 << r.wd) - 1) } else { v };
        self.wr_o::<OUT>(r.dst, v)
    }

    /// Raw-value variant of [`TCtx::wr`] for the handlers whose result
    /// needs no width mask (comparisons, reductions, zero stores).
    /// Returns the stored value: it becomes the next record's
    /// accumulator.
    #[inline(always)]
    fn wr_o<const OUT: bool>(&mut self, p: u32, v: u64) -> u64 {
        if OUT {
            self.changed = self.rd(p) != v;
        }
        self.wr_raw(p, v);
        v
    }

    /// Runtime-masked destination write for fused micro-ops: the same
    /// store [`TCtx::wr`] performs, with the `MASK` specialization
    /// replaced by a mask computed from the record's width (`wd = 64` —
    /// the `MASK = false` case — yields the identity mask, so one body
    /// covers both const variants; lowering only fuses `1 ≤ wd ≤ 64`
    /// records, for which the two are equivalent).
    #[inline(always)]
    fn wr_rt<const OUT: bool>(&mut self, r: &TInstr, v: u64) -> u64 {
        let v = v & (u64::MAX >> (64 - r.wd as u32));
        self.wr_o::<OUT>(r.dst, v)
    }

    /// Sign-extended operand fetch: from the accumulator when the
    /// `ACC` specialization marks the operand as the previous record's
    /// value (lowering proved the offsets equal), else from the arena.
    #[inline(always)]
    fn opnd_ext<const ACC: bool>(&self, acc: u64, p: u32, sh: u8) -> u64 {
        let raw = if ACC { acc } else { self.rd(p) };
        (((raw << sh) as i64) >> sh) as u64
    }

    /// Raw (unextended) variant of [`TCtx::opnd_ext`].
    #[inline(always)]
    fn opnd_raw<const ACC: bool>(&self, acc: u64, p: u32) -> u64 {
        if ACC {
            acc
        } else {
            self.rd(p)
        }
    }
}

// ----------------------------------------------------------- handlers

fn h_zero<const O: bool>(c: &mut TCtx<'_>, r: &TInstr, _acc: u64) -> u64 {
    c.wr_o::<O>(r.dst, 0)
}

fn h_add<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c
        .opnd_ext::<A>(acc, r.a, r.sa)
        .wrapping_add(c.opnd_ext::<B>(acc, r.b, r.sb));
    c.wr::<M, O>(r, v)
}

fn h_sub<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c
        .opnd_ext::<A>(acc, r.a, r.sa)
        .wrapping_sub(c.opnd_ext::<B>(acc, r.b, r.sb));
    c.wr::<M, O>(r, v)
}

fn h_mul<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c
        .opnd_ext::<A>(acc, r.a, r.sa)
        .wrapping_mul(c.opnd_ext::<B>(acc, r.b, r.sb));
    c.wr::<M, O>(r, v)
}

fn h_div<const S: bool, const M: bool, const O: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    _acc: u64,
) -> u64 {
    let av = c.rd_sh(r.a, r.sa);
    let bv = c.rd_sh(r.b, r.sb);
    let v = if bv == 0 {
        0
    } else if S {
        ((av as i64 as i128) / (bv as i64 as i128)) as u64
    } else {
        av / bv
    };
    c.wr::<M, O>(r, v)
}

fn h_rem<const S: bool, const M: bool, const O: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    _acc: u64,
) -> u64 {
    let av = c.rd_sh(r.a, r.sa);
    let bv = c.rd_sh(r.b, r.sb);
    let v = if bv == 0 {
        av
    } else if S {
        ((av as i64 as i128) % (bv as i64 as i128)) as u64
    } else {
        av % bv
    };
    c.wr::<M, O>(r, v)
}

fn h_and<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c.opnd_ext::<A>(acc, r.a, r.sa) & c.opnd_ext::<B>(acc, r.b, r.sb);
    c.wr::<M, O>(r, v)
}

fn h_or<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c.opnd_ext::<A>(acc, r.a, r.sa) | c.opnd_ext::<B>(acc, r.b, r.sb);
    c.wr::<M, O>(r, v)
}

fn h_xor<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c.opnd_ext::<A>(acc, r.a, r.sa) ^ c.opnd_ext::<B>(acc, r.b, r.sb);
    c.wr::<M, O>(r, v)
}

/// Comparison kernel shared by [`h_cmp`] and [`h_cmpmux`]: `OP` is
/// 0 Lt, 1 Leq, 2 Gt, 3 Geq, 4 Eq, 5 Neq; `S` keys signedness (from
/// operand `a`'s meta byte, as everywhere in the interpreter).
#[inline(always)]
fn cmp_take<const OP: u8, const S: bool>(av: u64, bv: u64) -> bool {
    match OP {
        0 => {
            if S {
                (av as i64) < (bv as i64)
            } else {
                av < bv
            }
        }
        1 => {
            if S {
                (av as i64) <= (bv as i64)
            } else {
                av <= bv
            }
        }
        2 => {
            if S {
                (av as i64) > (bv as i64)
            } else {
                av > bv
            }
        }
        3 => {
            if S {
                (av as i64) >= (bv as i64)
            } else {
                av >= bv
            }
        }
        4 => av == bv,
        _ => av != bv,
    }
}

/// Comparisons write 0/1, which any destination width ≥ 1 passes
/// through unmasked — no `MASK` specialization needed.
fn h_cmp<const OP: u8, const S: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = cmp_take::<OP, S>(
        c.opnd_ext::<A>(acc, r.a, r.sa),
        c.opnd_ext::<B>(acc, r.b, r.sb),
    );
    c.wr_o::<O>(r.dst, v as u64)
}

fn h_cmpmux<
    const OP: u8,
    const S: bool,
    const M: bool,
    const O: bool,
    const A: bool,
    const B: bool,
>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let take_t = cmp_take::<OP, S>(
        c.opnd_ext::<A>(acc, r.a, r.sa),
        c.opnd_ext::<B>(acc, r.b, r.sb),
    );
    let v = if take_t {
        c.rd_sh(r.ea, r.sea)
    } else {
        c.rd_sh(r.eb, r.seb)
    };
    c.wr::<M, O>(r, v)
}

fn h_dshl<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let sh = c.opnd_ext::<B>(acc, r.b, r.sb);
    let v = if sh >= 64 {
        0
    } else {
        c.opnd_raw::<A>(acc, r.a) << sh
    };
    c.wr::<M, O>(r, v)
}

fn h_dshr_u<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let sh = c.opnd_ext::<B>(acc, r.b, r.sb);
    let v = if sh >= 64 {
        0
    } else {
        c.opnd_raw::<A>(acc, r.a) >> sh
    };
    c.wr::<M, O>(r, v)
}

fn h_dshr_s<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let sh = c.opnd_ext::<B>(acc, r.b, r.sb);
    let v = ((c.opnd_ext::<A>(acc, r.a, r.sa) as i64) >> sh.min(63)) as u64;
    c.wr::<M, O>(r, v)
}

fn h_not<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = !c.opnd_raw::<A>(acc, r.a);
    c.wr::<M, O>(r, v)
}

/// `b | ea << 32` carry the operand's precomputed low mask.
fn h_andr<const O: bool, const A: bool>(c: &mut TCtx<'_>, r: &TInstr, acc: u64) -> u64 {
    let mask = (r.b as u64) | ((r.ea as u64) << 32);
    c.wr_o::<O>(r.dst, (c.opnd_raw::<A>(acc, r.a) == mask) as u64)
}

fn h_orr<const O: bool, const A: bool>(c: &mut TCtx<'_>, r: &TInstr, acc: u64) -> u64 {
    c.wr_o::<O>(r.dst, (c.opnd_raw::<A>(acc, r.a) != 0) as u64)
}

fn h_xorr<const O: bool, const A: bool>(c: &mut TCtx<'_>, r: &TInstr, acc: u64) -> u64 {
    c.wr_o::<O>(r.dst, (c.opnd_raw::<A>(acc, r.a).count_ones() % 2) as u64)
}

fn h_neg<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c.opnd_ext::<A>(acc, r.a, r.sa).wrapping_neg();
    c.wr::<M, O>(r, v)
}

/// `b` carries the immediate, pre-checked `< 64` at lowering.
fn h_shl<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c.opnd_raw::<A>(acc, r.a) << r.b;
    c.wr::<M, O>(r, v)
}

fn h_shr_u<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c.opnd_raw::<A>(acc, r.a) >> r.b;
    c.wr::<M, O>(r, v)
}

/// `b` is pre-clamped to 63 at lowering.
fn h_shr_s<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = ((c.opnd_ext::<A>(acc, r.a, r.sa) as i64) >> r.b) as u64;
    c.wr::<M, O>(r, v)
}

/// `b` is pre-clamped to 63 at lowering.
fn h_bits<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c.opnd_raw::<A>(acc, r.a) >> r.b;
    c.wr::<M, O>(r, v)
}

fn h_copy<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c.opnd_raw::<A>(acc, r.a);
    c.wr::<M, O>(r, v)
}

/// Sign-extending copy: the forced sign bit is baked into `sa`.
fn h_sext<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = c.opnd_ext::<A>(acc, r.a, r.sa);
    c.wr::<M, O>(r, v)
}

/// `a` = selector (raw), `b` = true arm, `ea` = false arm — the
/// two-unit encoding folded into one record at lowering.
fn h_mux<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = if c.opnd_raw::<A>(acc, r.a) != 0 {
        c.opnd_ext::<B>(acc, r.b, r.sb)
    } else {
        c.rd_sh(r.ea, r.sea)
    };
    c.wr::<M, O>(r, v)
}

/// `eb` carries the shift (the low operand's width), pre-checked
/// `< 64` at lowering.
fn h_cat<const M: bool, const O: bool, const A: bool, const B: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = (c.opnd_raw::<A>(acc, r.a) << r.eb) | c.opnd_raw::<B>(acc, r.b);
    c.wr::<M, O>(r, v)
}

/// `b` = immediate, `eb` = shift.
fn h_catimm<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let v = (c.opnd_raw::<A>(acc, r.a) << r.eb) | r.b as u64;
    c.wr::<M, O>(r, v)
}

/// `a` = address offset, `b` = memory index.
fn h_readmem<const M: bool, const O: bool, const A: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    acc: u64,
) -> u64 {
    let mut entry = [0u64; 1];
    let addr = c.opnd_raw::<A>(acc, r.a);
    c.mems.read_entry(r.b, addr, &mut entry);
    c.wr::<M, O>(r, entry[0])
}

/// Multi-word fallback: split the arena back into the classic
/// state/scratch/const views and run the mid-level interpreter on the
/// side-table instruction (`a` = side-table index).
fn h_wide(c: &mut TCtx<'_>, r: &TInstr, _acc: u64) -> u64 {
    let cb = c.const_base as usize;
    let sw = c.state_words as usize;
    let (vars, consts) = c.mem.split_at_mut(cb);
    let (state, scratch) = vars.split_at_mut(sw);
    let mut ctx = Ctx {
        state,
        scratch,
        consts: &*consts,
        mems: c.mems,
    };
    exec::exec_one(&mut ctx, &c.wide[r.a as usize]);
    // Wide results live outside the one-word accumulator discipline;
    // lowering never marks a successor of a wide record as
    // accumulator-fed, so the returned value is never read.
    0
}

// ------------------------------------------------------------- fusion
//
// Dispatch fusion: the dominant cost of the threaded hot loop at real
// design sizes is not the handlers' work but the indirect calls that
// reach them — once a cycle touches more record dispatches than the
// indirect-branch predictor can track (~0.5–1k on current cores), each
// one pays a full mispredict. Lowering therefore groups consecutive
// records drawn from a small micro-op alphabet into ONE dispatch whose
// monomorphized body executes the whole group with straight-line calls
// the compiler inlines — the per-record indirection disappears.
//
// A micro-op ([`Mop`]) re-expresses a handler family with its const
// specializations turned into record-driven runtime forms: operands
// always read from the arena (every record's store still happens, so
// the arena is always current — the accumulator is a latency hint, not
// a correctness requirement), sign-extension shifts are applied
// unconditionally (`0` = identity), and destination masking uses the
// record's width ([`TCtx::wr_rt`]). That collapses the `M`/`A`/`B`
// dims, so the alphabet stays small enough to pre-instantiate every
// pair, triple and quad — only the terminal-fold `O` dim survives, on
// the group's last element.

/// A fused micro-op: one record's full semantics (operand fetch,
/// compute, masked store), shaped for inlining into composite
/// handlers. `O` marks a task's folded terminal, as in the handlers.
trait Mop {
    fn eval<const O: bool>(c: &mut TCtx<'_>, r: &TInstr) -> u64;
}

/// The fusable micro-op alphabet. These six cover ~98% of the records
/// a real design lowers to; everything else stays a plain dispatch.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MopKind {
    Bits,
    Add,
    Xor,
    And,
    Or,
    Cat,
}

struct MBits;
impl Mop for MBits {
    #[inline(always)]
    fn eval<const O: bool>(c: &mut TCtx<'_>, r: &TInstr) -> u64 {
        let v = c.rd(r.a) >> r.b;
        c.wr_rt::<O>(r, v)
    }
}

struct MAdd;
impl Mop for MAdd {
    #[inline(always)]
    fn eval<const O: bool>(c: &mut TCtx<'_>, r: &TInstr) -> u64 {
        let v = c.rd_sh(r.a, r.sa).wrapping_add(c.rd_sh(r.b, r.sb));
        c.wr_rt::<O>(r, v)
    }
}

struct MXor;
impl Mop for MXor {
    #[inline(always)]
    fn eval<const O: bool>(c: &mut TCtx<'_>, r: &TInstr) -> u64 {
        let v = c.rd_sh(r.a, r.sa) ^ c.rd_sh(r.b, r.sb);
        c.wr_rt::<O>(r, v)
    }
}

struct MAnd;
impl Mop for MAnd {
    #[inline(always)]
    fn eval<const O: bool>(c: &mut TCtx<'_>, r: &TInstr) -> u64 {
        let v = c.rd_sh(r.a, r.sa) & c.rd_sh(r.b, r.sb);
        c.wr_rt::<O>(r, v)
    }
}

struct MOr;
impl Mop for MOr {
    #[inline(always)]
    fn eval<const O: bool>(c: &mut TCtx<'_>, r: &TInstr) -> u64 {
        let v = c.rd_sh(r.a, r.sa) | c.rd_sh(r.b, r.sb);
        c.wr_rt::<O>(r, v)
    }
}

struct MCat;
impl Mop for MCat {
    #[inline(always)]
    fn eval<const O: bool>(c: &mut TCtx<'_>, r: &TInstr) -> u64 {
        let v = (c.rd(r.a) << r.eb) | c.rd(r.b);
        c.wr_rt::<O>(r, v)
    }
}

// Composite handlers: one dispatch record (`a` = start index into
// [`TCtx::recs`], `b` = group length) runs a whole record group as
// inlined straight-line code. Each returns the last record's stored
// value, so the accumulator invariant (`acc == mem[prev.dst]`) holds
// across group boundaries for any acc-fed record that follows.

fn h_fuse2<M1: Mop, M2: Mop, const O: bool>(c: &mut TCtx<'_>, r: &TInstr, _acc: u64) -> u64 {
    let i = r.a as usize;
    let r1 = c.recs[i];
    let r2 = c.recs[i + 1];
    M1::eval::<false>(c, &r1);
    M2::eval::<O>(c, &r2)
}

fn h_fuse3<M1: Mop, M2: Mop, M3: Mop, const O: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    _acc: u64,
) -> u64 {
    let i = r.a as usize;
    let r1 = c.recs[i];
    let r2 = c.recs[i + 1];
    let r3 = c.recs[i + 2];
    M1::eval::<false>(c, &r1);
    M2::eval::<false>(c, &r2);
    M3::eval::<O>(c, &r3)
}

fn h_fuse4<M1: Mop, M2: Mop, M3: Mop, M4: Mop, const O: bool>(
    c: &mut TCtx<'_>,
    r: &TInstr,
    _acc: u64,
) -> u64 {
    let i = r.a as usize;
    let r1 = c.recs[i];
    let r2 = c.recs[i + 1];
    let r3 = c.recs[i + 2];
    let r4 = c.recs[i + 3];
    M1::eval::<false>(c, &r1);
    M2::eval::<false>(c, &r2);
    M3::eval::<false>(c, &r3);
    M4::eval::<O>(c, &r4)
}

/// Arbitrary-length period-2 group `M1 M2 M1 M2 …` (`b` = length ≥ 5;
/// homogeneous runs are the `M1 == M2` case). The loop's conditional
/// branches alternate with the iteration parity — a pattern the
/// branch predictor tracks perfectly, unlike the indirect calls this
/// replaces.
fn h_fuse_rep<M1: Mop, M2: Mop, const O: bool>(c: &mut TCtx<'_>, r: &TInstr, _acc: u64) -> u64 {
    let start = r.a as usize;
    let n = r.b as usize;
    let mut j = 0usize;
    while j + 2 < n {
        let r1 = c.recs[start + j];
        let r2 = c.recs[start + j + 1];
        M1::eval::<false>(c, &r1);
        M2::eval::<false>(c, &r2);
        j += 2;
    }
    if j + 2 == n {
        let r1 = c.recs[start + j];
        let r2 = c.recs[start + j + 1];
        M1::eval::<false>(c, &r1);
        M2::eval::<O>(c, &r2)
    } else {
        let r1 = c.recs[start + j];
        M1::eval::<O>(c, &r1)
    }
}

/// Expands `$f!(<mop type>)` for a [`MopKind`] — the one-level step of
/// the nested generic dispatch that turns runtime kinds into
/// monomorphized composite handlers.
macro_rules! mop_match {
    ($k:expr, $f:ident) => {
        match $k {
            MopKind::Bits => $f!(MBits),
            MopKind::Add => $f!(MAdd),
            MopKind::Xor => $f!(MXor),
            MopKind::And => $f!(MAnd),
            MopKind::Or => $f!(MOr),
            MopKind::Cat => $f!(MCat),
        }
    };
}

fn fuse2_handler(k: [MopKind; 2], o: bool) -> Handler {
    fn l2<M1: Mop>(k2: MopKind, o: bool) -> Handler {
        macro_rules! f {
            ($M:ty) => {
                if o {
                    h_fuse2::<M1, $M, true> as Handler
                } else {
                    h_fuse2::<M1, $M, false> as Handler
                }
            };
        }
        mop_match!(k2, f)
    }
    macro_rules! f {
        ($M:ty) => {
            l2::<$M>(k[1], o)
        };
    }
    mop_match!(k[0], f)
}

fn fuse3_handler(k: [MopKind; 3], o: bool) -> Handler {
    fn l3<M1: Mop, M2: Mop>(k3: MopKind, o: bool) -> Handler {
        macro_rules! f {
            ($M:ty) => {
                if o {
                    h_fuse3::<M1, M2, $M, true> as Handler
                } else {
                    h_fuse3::<M1, M2, $M, false> as Handler
                }
            };
        }
        mop_match!(k3, f)
    }
    fn l2<M1: Mop>(k2: MopKind, k3: MopKind, o: bool) -> Handler {
        macro_rules! f {
            ($M:ty) => {
                l3::<M1, $M>(k3, o)
            };
        }
        mop_match!(k2, f)
    }
    macro_rules! f {
        ($M:ty) => {
            l2::<$M>(k[1], k[2], o)
        };
    }
    mop_match!(k[0], f)
}

fn fuse4_handler(k: [MopKind; 4], o: bool) -> Handler {
    fn l4<M1: Mop, M2: Mop, M3: Mop>(k4: MopKind, o: bool) -> Handler {
        macro_rules! f {
            ($M:ty) => {
                if o {
                    h_fuse4::<M1, M2, M3, $M, true> as Handler
                } else {
                    h_fuse4::<M1, M2, M3, $M, false> as Handler
                }
            };
        }
        mop_match!(k4, f)
    }
    fn l3<M1: Mop, M2: Mop>(k3: MopKind, k4: MopKind, o: bool) -> Handler {
        macro_rules! f {
            ($M:ty) => {
                l4::<M1, M2, $M>(k4, o)
            };
        }
        mop_match!(k3, f)
    }
    fn l2<M1: Mop>(k2: MopKind, k3: MopKind, k4: MopKind, o: bool) -> Handler {
        macro_rules! f {
            ($M:ty) => {
                l3::<M1, $M>(k3, k4, o)
            };
        }
        mop_match!(k2, f)
    }
    macro_rules! f {
        ($M:ty) => {
            l2::<$M>(k[1], k[2], k[3], o)
        };
    }
    mop_match!(k[0], f)
}

fn fuse_rep_handler(k: [MopKind; 2], o: bool) -> Handler {
    fn l2<M1: Mop>(k2: MopKind, o: bool) -> Handler {
        macro_rules! f {
            ($M:ty) => {
                if o {
                    h_fuse_rep::<M1, $M, true> as Handler
                } else {
                    h_fuse_rep::<M1, $M, false> as Handler
                }
            };
        }
        mop_match!(k2, f)
    }
    macro_rules! f {
        ($M:ty) => {
            l2::<$M>(k[1], o)
        };
    }
    mop_match!(k[0], f)
}

// ----------------------------------------------------------- lowering

/// Sign-extension shift amount for an operand meta byte: `64 - width`
/// for signed sub-word operands, 0 (the identity) otherwise.
fn ext_shift(meta: u8) -> u8 {
    let w = (meta & !META_SIGNED) as u32;
    if meta >= META_SIGNED && w < 64 {
        (64 - w) as u8
    } else {
        0
    }
}

fn lowmask64(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else if w == 0 {
        0
    } else {
        (1u64 << w) - 1
    }
}

/// A handler plus its terminal-fold twin (`O = true`), so `lower` can
/// retrofit a task's last record into its store-if-changed epilogue.
type HPair = (Handler, Handler);

/// Picks the comparison handler (signedness baked in; `Eq`/`Neq` are
/// sign-independent after extension).
fn cmp_handler(op: Op, signed: bool, aa: bool, ab: bool) -> HPair {
    macro_rules! cp {
        ($opc:literal, $s:literal) => {
            match (aa, ab) {
                (true, true) => (
                    h_cmp::<$opc, $s, false, true, true> as Handler,
                    h_cmp::<$opc, $s, true, true, true> as Handler,
                ),
                (true, false) => (
                    h_cmp::<$opc, $s, false, true, false> as Handler,
                    h_cmp::<$opc, $s, true, true, false> as Handler,
                ),
                (false, true) => (
                    h_cmp::<$opc, $s, false, false, true> as Handler,
                    h_cmp::<$opc, $s, true, false, true> as Handler,
                ),
                (false, false) => (
                    h_cmp::<$opc, $s, false, false, false> as Handler,
                    h_cmp::<$opc, $s, true, false, false> as Handler,
                ),
            }
        };
    }
    match (op, signed) {
        (Op::Lt, false) => cp!(0, false),
        (Op::Lt, true) => cp!(0, true),
        (Op::Leq, false) => cp!(1, false),
        (Op::Leq, true) => cp!(1, true),
        (Op::Gt, false) => cp!(2, false),
        (Op::Gt, true) => cp!(2, true),
        (Op::Geq, false) => cp!(3, false),
        (Op::Geq, true) => cp!(3, true),
        (Op::Eq, _) => cp!(4, false),
        (Op::Neq, _) => cp!(5, false),
        (other, _) => unreachable!("{other:?} is not a comparison"),
    }
}

/// Picks the fused compare→mux handler.
fn cmpmux_handler(op: Op, signed: bool, mask: bool, aa: bool, ab: bool) -> HPair {
    macro_rules! cm2 {
        ($opc:literal, $s:literal, $m:literal) => {
            match (aa, ab) {
                (true, true) => (
                    h_cmpmux::<$opc, $s, $m, false, true, true> as Handler,
                    h_cmpmux::<$opc, $s, $m, true, true, true> as Handler,
                ),
                (true, false) => (
                    h_cmpmux::<$opc, $s, $m, false, true, false> as Handler,
                    h_cmpmux::<$opc, $s, $m, true, true, false> as Handler,
                ),
                (false, true) => (
                    h_cmpmux::<$opc, $s, $m, false, false, true> as Handler,
                    h_cmpmux::<$opc, $s, $m, true, false, true> as Handler,
                ),
                (false, false) => (
                    h_cmpmux::<$opc, $s, $m, false, false, false> as Handler,
                    h_cmpmux::<$opc, $s, $m, true, false, false> as Handler,
                ),
            }
        };
    }
    macro_rules! cm {
        ($opc:literal) => {
            match (signed, mask) {
                (true, true) => cm2!($opc, true, true),
                (true, false) => cm2!($opc, true, false),
                (false, true) => cm2!($opc, false, true),
                (false, false) => cm2!($opc, false, false),
            }
        };
    }
    match op {
        Op::CmpMuxLt => cm!(0),
        Op::CmpMuxLeq => cm!(1),
        Op::CmpMuxGt => cm!(2),
        Op::CmpMuxGeq => cm!(3),
        Op::CmpMuxEq => cm!(4),
        Op::CmpMuxNeq => cm!(5),
        other => unreachable!("{other:?} is not a compare-mux"),
    }
}

/// Lowers a compiled design's execution image into a threaded program.
/// Pure pre-decode: every packed operand reference resolves to a flat
/// arena offset, every dispatch decision is taken once, here.
pub(crate) fn lower(c: &Compiled) -> ThreadedProg {
    let t0 = std::time::Instant::now();
    let scratch_base = c.state_words as u32;
    let const_base = scratch_base + c.scratch_words as u32;
    let arena_words = (const_base as usize + c.consts.len()) as u32;
    // These asserts are what lets the hot loop read and write the
    // arena unchecked (`TCtx::rd`/`wr_raw`): every offset a handler
    // ever dereferences passes through here exactly once.
    let resolve = |p: u32| -> u32 {
        let off = p & OFF_MASK;
        let r = match p >> SPACE_SHIFT {
            0 => off,
            1 => scratch_base + off,
            _ => const_base + off,
        };
        assert!(r < arena_words, "operand offset outside the arena");
        r
    };
    // Destinations are never consts (mirrors `pw_write`).
    let resolve_dst = |p: u32| -> u32 {
        let off = p & OFF_MASK;
        let r = match p >> SPACE_SHIFT {
            0 => off,
            _ => scratch_base + off,
        };
        assert!(r < const_base, "destination offset outside state|scratch");
        r
    };
    let resolve_slot = |s: Slot| -> u32 {
        let r = match s.space {
            Space::State => s.off,
            Space::Scratch => scratch_base + s.off,
            Space::Const => const_base + s.off,
        };
        // `<=` because a zero-width slot may sit at the arena's end;
        // `store_if_changed` keeps checked indexing, so this is for
        // early diagnosis, not for safety.
        assert!(r <= arena_words, "slot offset outside the arena");
        r
    };
    let mut records: Vec<TInstr> = Vec::with_capacity(c.image.code.len());
    let mut kinds: Vec<Option<MopKind>> = Vec::with_capacity(c.image.code.len());
    let mut dispatch: Vec<TInstr> = Vec::with_capacity(c.image.code.len());
    let mut ttasks: Vec<TTask> = Vec::with_capacity(c.tasks.len());
    let mut sn_tasks: Vec<(u32, u32)> = Vec::with_capacity(c.supernode_tasks.len());
    let mut sn_counts: Vec<(u32, u32, u32)> = Vec::with_capacity(c.supernode_tasks.len());
    for &(lo, hi) in &c.supernode_tasks {
        let t_lo = ttasks.len() as u32;
        let mut counts = (0u32, 0u32, 0u32);
        for task in &c.tasks[lo as usize..hi as usize] {
            // Inputs are skipped before any counting in the essential
            // eval loop, so dropping them here is counter-invisible.
            if matches!(task.kind, TaskKind::Input) {
                continue;
            }
            let r_lo = records.len() as u32;
            counts.0 += 1;
            counts.1 += task.n_instrs;
            counts.2 += task.n_fused;
            let last_o = lower_units(
                &c.image.code[task.code.0 as usize..task.code.1 as usize],
                &resolve,
                &resolve_dst,
                &mut records,
                &mut kinds,
            );
            let is_comb = matches!(task.kind, TaskKind::Comb);
            let alias = task.result == task.out;
            let result = resolve_slot(task.result);
            let out = resolve_slot(task.out);
            // Terminal-record folding: when a single-word comb task's
            // last record computes the result slot and nothing else in
            // the task reads that slot back, rewrite it to the `O`
            // handler twin targeting the out slot directly — the whole
            // store-if-changed pass (two loads, a compare, a store)
            // collapses into the record's own write. The conservative
            // operand scan compares immediates too; a false positive
            // only costs the fold, never correctness.
            let mut fold_out = false;
            if let Some(ho) = last_o {
                let reads_result = records[r_lo as usize..]
                    .iter()
                    .any(|r| r.a == result || r.b == result || r.ea == result || r.eb == result);
                if is_comb && !alias && task.out.words == 1 && out < const_base && !reads_result {
                    let last = records.last_mut().expect("last_o implies a record");
                    if last.dst == result {
                        last.handler = ho;
                        last.dst = out;
                        fold_out = true;
                    }
                }
            }
            let d_lo = dispatch.len() as u32;
            fuse_dispatch(
                &records[r_lo as usize..],
                &kinds[r_lo as usize..],
                r_lo,
                fold_out,
                &mut dispatch,
            );
            ttasks.push(TTask {
                rec: (d_lo, dispatch.len() as u32),
                is_comb,
                fold_out,
                alias,
                branchless: task.branchless,
                result,
                out,
                out_words: task.out.words as u32,
                act: task.act,
            });
        }
        sn_tasks.push((t_lo, ttasks.len() as u32));
        sn_counts.push(counts);
    }
    ThreadedProg {
        records,
        dispatch,
        ttasks,
        sn_tasks,
        sn_counts,
        state_words: c.state_words as u32,
        const_base,
        arena_words: const_base as usize + c.consts.len(),
        lowering_time: t0.elapsed(),
    }
}

/// Builds one task's dispatch stream from its lowered records: maximal
/// segments of mop-tagged records are chopped greedily into fused
/// groups (an arbitrary-length period-2 run when one repeats, else
/// quads, triples, pairs), everything else copies through verbatim. A
/// group containing the task's folded terminal gets the `O = true`
/// composite; a terminal left as a single already carries its `O`
/// handler from the fold retrofit.
fn fuse_dispatch(
    recs: &[TInstr],
    kinds: &[Option<MopKind>],
    base: u32,
    fold_out: bool,
    out: &mut Vec<TInstr>,
) {
    let n = recs.len();
    // A synthesized group record: `a` = start index into the full
    // record stream, `b` = length; `dst` mirrors the group's last
    // record so a debugger sees where the accumulator lands.
    let group = |handler: Handler, i: usize, len: usize| TInstr {
        handler,
        dst: recs[i + len - 1].dst,
        a: base + i as u32,
        b: len as u32,
        ea: 0,
        eb: 0,
        sa: 0,
        sb: 0,
        sea: 0,
        seb: 0,
        wd: 64,
    };
    let mut i = 0usize;
    while i < n {
        if kinds[i].is_none() {
            out.push(recs[i]);
            i += 1;
            continue;
        }
        // Maximal fusable segment, then greedy chunks over it.
        let mut seg = i + 1;
        while seg < n && kinds[seg].is_some() {
            seg += 1;
        }
        while i < seg {
            let rem = seg - i;
            // Longest period-2 prefix: worth a runtime-length loop
            // handler once it beats what two static groups cover.
            let mut alt = 1;
            while i + alt < seg && (alt < 2 || kinds[i + alt] == kinds[i + alt - 2]) {
                alt += 1;
            }
            let term = |len: usize| fold_out && i + len == n;
            let k = |j: usize| kinds[i + j].expect("inside fusable segment");
            if alt >= 5 {
                out.push(group(fuse_rep_handler([k(0), k(1)], term(alt)), i, alt));
                i += alt;
            } else if rem >= 4 {
                out.push(group(
                    fuse4_handler([k(0), k(1), k(2), k(3)], term(4)),
                    i,
                    4,
                ));
                i += 4;
            } else if rem == 3 {
                out.push(group(fuse3_handler([k(0), k(1), k(2)], term(3)), i, 3));
                i += 3;
            } else if rem == 2 {
                out.push(group(fuse2_handler([k(0), k(1)], term(2)), i, 2));
                i += 2;
            } else {
                out.push(recs[i]);
                i += 1;
            }
        }
    }
}

/// Lowers one task's encoded unit range into handler records. Returns
/// the last record's terminal-fold twin (its `O = true` handler) so
/// [`lower`] can retrofit it into the task's store-if-changed epilogue
/// — `None` for an empty range or a [`h_wide`] terminal, which have no
/// fold form.
///
/// Accumulator marking happens here too: an operand whose resolved
/// offset equals the previous record's destination is flagged (`A`/`B`
/// const dims) to read the dispatch loop's accumulator register
/// instead of the arena, skipping the store-to-load forward that
/// otherwise serializes every dependent record pair.
fn lower_units(
    code: &[EInstr],
    resolve: &impl Fn(u32) -> u32,
    resolve_dst: &impl Fn(u32) -> u32,
    out: &mut Vec<TInstr>,
    kinds: &mut Vec<Option<MopKind>>,
) -> Option<Handler> {
    // Handler/fold-twin pairs across the specialization dims: `M`
    // (destination mask), `A`/`B` (operand fed by the accumulator).
    // Both pair elements share every dim except `O`, so the fold
    // retrofit in `lower` preserves the operand wiring.
    macro_rules! pick_mab {
        ($h:ident, $m:expr, $aa:expr, $ab:expr) => {
            match ($m, $aa, $ab) {
                (true, true, true) => (
                    $h::<true, false, true, true> as Handler,
                    $h::<true, true, true, true> as Handler,
                ),
                (true, true, false) => (
                    $h::<true, false, true, false> as Handler,
                    $h::<true, true, true, false> as Handler,
                ),
                (true, false, true) => (
                    $h::<true, false, false, true> as Handler,
                    $h::<true, true, false, true> as Handler,
                ),
                (true, false, false) => (
                    $h::<true, false, false, false> as Handler,
                    $h::<true, true, false, false> as Handler,
                ),
                (false, true, true) => (
                    $h::<false, false, true, true> as Handler,
                    $h::<false, true, true, true> as Handler,
                ),
                (false, true, false) => (
                    $h::<false, false, true, false> as Handler,
                    $h::<false, true, true, false> as Handler,
                ),
                (false, false, true) => (
                    $h::<false, false, false, true> as Handler,
                    $h::<false, true, false, true> as Handler,
                ),
                (false, false, false) => (
                    $h::<false, false, false, false> as Handler,
                    $h::<false, true, false, false> as Handler,
                ),
            }
        };
    }
    macro_rules! pick_ma {
        ($h:ident, $m:expr, $aa:expr) => {
            match ($m, $aa) {
                (true, true) => (
                    $h::<true, false, true> as Handler,
                    $h::<true, true, true> as Handler,
                ),
                (true, false) => (
                    $h::<true, false, false> as Handler,
                    $h::<true, true, false> as Handler,
                ),
                (false, true) => (
                    $h::<false, false, true> as Handler,
                    $h::<false, true, true> as Handler,
                ),
                (false, false) => (
                    $h::<false, false, false> as Handler,
                    $h::<false, true, false> as Handler,
                ),
            }
        };
    }
    macro_rules! pick_oa {
        ($h:ident, $aa:expr) => {
            if $aa {
                ($h::<false, true> as Handler, $h::<true, true> as Handler)
            } else {
                ($h::<false, false> as Handler, $h::<true, false> as Handler)
            }
        };
    }
    // Division and remainder are too rare to earn accumulator dims.
    macro_rules! pick_sm {
        ($h:ident, $signed:expr, $mask:expr) => {
            match ($signed, $mask) {
                (true, true) => (
                    $h::<true, true, false> as Handler,
                    $h::<true, true, true> as Handler,
                ),
                (true, false) => (
                    $h::<true, false, false> as Handler,
                    $h::<true, false, true> as Handler,
                ),
                (false, true) => (
                    $h::<false, true, false> as Handler,
                    $h::<false, true, true> as Handler,
                ),
                (false, false) => (
                    $h::<false, false, false> as Handler,
                    $h::<false, false, true> as Handler,
                ),
            }
        };
    }
    let mut last_o = None;
    // Arena offset the previous record wrote — what the accumulator
    // holds when the next record runs. `None` across a wide record,
    // whose multi-word result the one-word accumulator cannot carry.
    let mut prev: Option<u32> = None;
    let mut i = 0usize;
    while i < code.len() {
        let ins = code[i];
        i += 1;
        let mask = ins.xd < 64;
        let signed = ins.xa >= META_SIGNED;
        // `a` is a real operand offset for every op but `Wide` (where
        // it indexes the side table); `b` varies per arm, so arms that
        // use it as an offset resolve and flag it themselves.
        let (ra, aa) = if matches!(ins.op, Op::Wide) {
            (0, false)
        } else {
            let r = resolve(ins.a);
            (r, prev == Some(r))
        };
        let base = TInstr {
            handler: h_zero::<false>,
            dst: resolve_dst(ins.dst),
            a: 0,
            b: 0,
            ea: 0,
            eb: 0,
            sa: 0,
            sb: 0,
            sea: 0,
            seb: 0,
            wd: ins.xd,
        };
        // Binary: both operands read sign-extended per their metas.
        let bin = |(h, ho): HPair, a: u32, b: u32| {
            (
                TInstr {
                    handler: h,
                    a,
                    b,
                    sa: ext_shift(ins.xa),
                    sb: ext_shift(ins.xb),
                    ..base
                },
                Some(ho),
            )
        };
        // Unary on the raw (unextended) operand word.
        let un = |(h, ho): HPair, a: u32| {
            (
                TInstr {
                    handler: h,
                    a,
                    ..base
                },
                Some(ho),
            )
        };
        let (rec, o) = match ins.op {
            Op::Add => {
                let rb = resolve(ins.b);
                bin(pick_mab!(h_add, mask, aa, prev == Some(rb)), ra, rb)
            }
            Op::Sub => {
                let rb = resolve(ins.b);
                bin(pick_mab!(h_sub, mask, aa, prev == Some(rb)), ra, rb)
            }
            Op::Mul => {
                let rb = resolve(ins.b);
                bin(pick_mab!(h_mul, mask, aa, prev == Some(rb)), ra, rb)
            }
            Op::Div => bin(pick_sm!(h_div, signed, mask), ra, resolve(ins.b)),
            Op::Rem => bin(pick_sm!(h_rem, signed, mask), ra, resolve(ins.b)),
            Op::Lt | Op::Leq | Op::Gt | Op::Geq | Op::Eq | Op::Neq => {
                let rb = resolve(ins.b);
                bin(cmp_handler(ins.op, signed, aa, prev == Some(rb)), ra, rb)
            }
            Op::And => {
                let rb = resolve(ins.b);
                bin(pick_mab!(h_and, mask, aa, prev == Some(rb)), ra, rb)
            }
            Op::Or => {
                let rb = resolve(ins.b);
                bin(pick_mab!(h_or, mask, aa, prev == Some(rb)), ra, rb)
            }
            Op::Xor => {
                let rb = resolve(ins.b);
                bin(pick_mab!(h_xor, mask, aa, prev == Some(rb)), ra, rb)
            }
            Op::Dshl => {
                let rb = resolve(ins.b);
                bin(pick_mab!(h_dshl, mask, aa, prev == Some(rb)), ra, rb)
            }
            Op::Dshr => {
                let rb = resolve(ins.b);
                let ab = prev == Some(rb);
                if signed {
                    bin(pick_mab!(h_dshr_s, mask, aa, ab), ra, rb)
                } else {
                    bin(pick_mab!(h_dshr_u, mask, aa, ab), ra, rb)
                }
            }
            Op::Not => un(pick_ma!(h_not, mask, aa), ra),
            Op::Andr => {
                let m = lowmask64((ins.xa & !META_SIGNED) as u32);
                let (h, ho) = pick_oa!(h_andr, aa);
                (
                    TInstr {
                        handler: h,
                        a: ra,
                        b: m as u32,
                        ea: (m >> 32) as u32,
                        ..base
                    },
                    Some(ho),
                )
            }
            Op::Orr => un(pick_oa!(h_orr, aa), ra),
            Op::Xorr => un(pick_oa!(h_xorr, aa), ra),
            Op::Neg => {
                let (h, ho) = pick_ma!(h_neg, mask, aa);
                (
                    TInstr {
                        handler: h,
                        a: ra,
                        sa: ext_shift(ins.xa),
                        ..base
                    },
                    Some(ho),
                )
            }
            Op::Shl => {
                if ins.b >= 64 {
                    // The whole value shifts out: store zero.
                    (base, Some(h_zero::<true> as Handler))
                } else {
                    let (h, ho) = pick_ma!(h_shl, mask, aa);
                    (
                        TInstr {
                            handler: h,
                            a: ra,
                            b: ins.b,
                            ..base
                        },
                        Some(ho),
                    )
                }
            }
            Op::Shr => {
                if signed {
                    let (h, ho) = pick_ma!(h_shr_s, mask, aa);
                    (
                        TInstr {
                            handler: h,
                            a: ra,
                            b: ins.b.min(63),
                            sa: ext_shift(ins.xa),
                            ..base
                        },
                        Some(ho),
                    )
                } else if ins.b >= 64 {
                    (base, Some(h_zero::<true> as Handler))
                } else {
                    let (h, ho) = pick_ma!(h_shr_u, mask, aa);
                    (
                        TInstr {
                            handler: h,
                            a: ra,
                            b: ins.b,
                            ..base
                        },
                        Some(ho),
                    )
                }
            }
            Op::Bits => {
                let (h, ho) = pick_ma!(h_bits, mask, aa);
                (
                    TInstr {
                        handler: h,
                        a: ra,
                        b: ins.b.min(63),
                        ..base
                    },
                    Some(ho),
                )
            }
            Op::Copy => un(pick_ma!(h_copy, mask, aa), ra),
            Op::Sext => {
                // `xa` carries the forced sign bit from encoding.
                let (h, ho) = pick_ma!(h_sext, mask, aa);
                (
                    TInstr {
                        handler: h,
                        a: ra,
                        sa: ext_shift(ins.xa),
                        ..base
                    },
                    Some(ho),
                )
            }
            Op::Mux => {
                let ext = code[i];
                i += 1;
                let rb = resolve(ins.b);
                let (h, ho) = pick_mab!(h_mux, mask, aa, prev == Some(rb));
                (
                    TInstr {
                        handler: h,
                        a: ra,
                        b: rb,
                        sb: ext_shift(ins.xb),
                        ea: resolve(ext.a),
                        sea: ext_shift(ext.xa),
                        ..base
                    },
                    Some(ho),
                )
            }
            Op::Cat => {
                let sh = ins.xb as u32;
                if sh >= 64 {
                    // The high operand shifts out entirely.
                    let lo = resolve(ins.b);
                    un(pick_ma!(h_copy, mask, prev == Some(lo)), lo)
                } else {
                    let rb = resolve(ins.b);
                    let (h, ho) = pick_mab!(h_cat, mask, aa, prev == Some(rb));
                    (
                        TInstr {
                            handler: h,
                            a: ra,
                            b: rb,
                            eb: sh,
                            ..base
                        },
                        Some(ho),
                    )
                }
            }
            Op::CatImm => {
                let (h, ho) = pick_ma!(h_catimm, mask, aa);
                (
                    TInstr {
                        handler: h,
                        a: ra,
                        b: ins.b,
                        eb: ins.xb as u32,
                        ..base
                    },
                    Some(ho),
                )
            }
            Op::ReadMem => {
                let (h, ho) = pick_ma!(h_readmem, mask, aa);
                (
                    TInstr {
                        handler: h,
                        a: ra,
                        b: ins.b,
                        ..base
                    },
                    Some(ho),
                )
            }
            Op::CmpMuxLt
            | Op::CmpMuxLeq
            | Op::CmpMuxGt
            | Op::CmpMuxGeq
            | Op::CmpMuxEq
            | Op::CmpMuxNeq => {
                let ext = code[i];
                i += 1;
                let rb = resolve(ins.b);
                let (h, ho) = cmpmux_handler(ins.op, signed, mask, aa, prev == Some(rb));
                (
                    TInstr {
                        handler: h,
                        a: ra,
                        b: rb,
                        sa: ext_shift(ins.xa),
                        sb: ext_shift(ins.xb),
                        ea: resolve(ext.a),
                        sea: ext_shift(ext.xa),
                        eb: resolve(ext.b),
                        seb: ext_shift(ext.xb),
                        ..base
                    },
                    Some(ho),
                )
            }
            Op::Ext => unreachable!("extension unit consumed by its primary"),
            Op::Wide => (
                TInstr {
                    handler: h_wide,
                    a: ins.a,
                    ..base
                },
                None,
            ),
        };
        // Tag the record's fusion micro-op, if its lowered form is one
        // the alphabet replicates. Special-case arms (`Cat` with the
        // high operand shifted out lowers to a copy; shifts ≥ 64 lower
        // to a zero store) fall outside their op's mop semantics and
        // stay plain dispatches, as does any degenerate width (the
        // runtime mask in `wr_rt` needs `1 ≤ wd ≤ 64`).
        let kind = if (1..=64).contains(&ins.xd) {
            match ins.op {
                Op::Bits => Some(MopKind::Bits),
                Op::Add => Some(MopKind::Add),
                Op::Xor => Some(MopKind::Xor),
                Op::And => Some(MopKind::And),
                Op::Or => Some(MopKind::Or),
                Op::Cat if (ins.xb as u32) < 64 => Some(MopKind::Cat),
                _ => None,
            }
        } else {
            None
        };
        kinds.push(kind);
        out.push(rec);
        last_o = o;
        prev = if matches!(ins.op, Op::Wide) {
            None
        } else {
            Some(rec.dst)
        };
    }
    last_o
}

// -------------------------------------------------------------- sweep

/// Runs one task's record range: the entire hot loop. The accumulator
/// carries each record's computed value to the next in a register;
/// records whose operands lowering flagged as accumulator-fed skip the
/// arena load (and with it the store-to-load forward stall of the
/// dependency chain).
#[inline]
fn run_records(ctx: &mut TCtx<'_>, recs: &[TInstr]) {
    let mut acc = 0u64;
    for r in recs {
        acc = (r.handler)(ctx, r, acc);
    }
}

/// The threaded mirror of [`crate::executor`]'s `store_if_changed`,
/// over pre-resolved arena offsets.
#[inline]
fn store_if_changed(ctx: &mut TCtx<'_>, t: &TTask) -> bool {
    if t.alias {
        // value computed in place (pure-alias tasks): treat as changed
        // so successors stay conservative-correct.
        return true;
    }
    let mut changed = false;
    for i in 0..t.out_words as usize {
        let new = ctx.mem[t.result as usize + i];
        let off = t.out as usize + i;
        if ctx.mem[off] != new {
            ctx.mem[off] = new;
            changed = true;
        }
    }
    changed
}

/// Evaluates one supernode through the record stream — the threaded
/// mirror of [`executor::eval_supernode`], with identical counter
/// accounting and the shared [`executor::activate`] epilogue.
#[inline]
fn eval_supernode(
    c: &Compiled,
    prog: &ThreadedProg,
    ctx: &mut TCtx<'_>,
    flags: &mut &mut [u64],
    fired: &mut &mut [u64],
    counters: &mut Counters,
    sn: usize,
) {
    fired.set_bit(sn as u32);
    counters.supernode_evals += 1;
    // A fired supernode runs every task, so the per-task counter
    // contributions collapse into the lowering-time sums — identical
    // totals to the essential engine's per-task accounting.
    let (n_evals, n_instrs, n_fused) = prog.sn_counts[sn];
    counters.node_evals += n_evals as u64;
    counters.instrs_executed += n_instrs as u64;
    counters.fused_executed += n_fused as u64;
    let (lo, hi) = prog.sn_tasks[sn];
    for t in &prog.ttasks[lo as usize..hi as usize] {
        run_records(ctx, &prog.dispatch[t.rec.0 as usize..t.rec.1 as usize]);
        if t.is_comb {
            let changed = if t.fold_out {
                ctx.changed
            } else {
                store_if_changed(ctx, t)
            };
            if changed {
                counters.value_changes += 1;
            }
            executor::activate(flags, counters, &c.act_list, t.act, t.branchless, changed);
        }
    }
}

/// One essential-signal sweep dispatched through the record stream —
/// the threaded mirror of [`executor::sweep_essential`], bit- and
/// counter-identical by construction (same examination accounting in
/// both word-skip modes, same forward re-check discipline).
pub(crate) fn sweep(
    c: &Compiled,
    prog: &ThreadedProg,
    ctx: &mut TCtx<'_>,
    mut flags: &mut [u64],
    mut fired: &mut [u64],
    counters: &mut Counters,
    word_skip: bool,
) {
    let num_sn = c.num_supernodes;
    for w in 0..num_sn.div_ceil(64) {
        if word_skip {
            counters.aexam_checks += 1;
            loop {
                let bits = flags.load_word(w);
                if bits == 0 {
                    break;
                }
                let t = bits.trailing_zeros();
                flags.clear_word(w, 1u64 << t);
                counters.aexam_checks += 1;
                eval_supernode(
                    c,
                    prog,
                    ctx,
                    &mut flags,
                    &mut fired,
                    counters,
                    (w * 64) + t as usize,
                );
            }
        } else {
            let base = w * 64;
            let hi = (base + 64).min(num_sn);
            for sn in base..hi {
                counters.aexam_checks += 1;
                if flags.load_word(w) >> (sn - base) & 1 == 1 {
                    flags.clear_word(w, 1u64 << (sn - base));
                    eval_supernode(c, prog, ctx, &mut flags, &mut fired, counters, sn);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimOptions, Simulator};

    const ALU: &str = r#"
circuit Alu :
  module Alu :
    input clock : Clock
    input a : UInt<8>
    input b : UInt<8>
    input sa : SInt<8>
    input sb : SInt<8>
    output sum : UInt<9>
    output d : UInt<8>
    output r : SInt<8>
    output cmp : UInt<1>
    output m : UInt<8>
    output red : UInt<1>
    sum <= add(a, b)
    d <= div(a, b)
    r <= rem(sa, sb)
    cmp <= lt(sa, sb)
    m <= mux(gt(a, b), a, b)
    red <= andr(a)
"#;

    #[test]
    fn lowering_covers_every_unit_and_folds_ext() {
        let g = gsim_firrtl::compile(ALU).unwrap();
        let sim = Simulator::compile(&g, &SimOptions::threaded()).unwrap();
        let prog = lower(sim.compiled());
        // Every two-unit encoding folds to one record, so the record
        // count never exceeds the unit count.
        assert!(prog.num_records() <= sim.image_units());
        assert!(prog.num_records() > 0);
        assert_eq!(
            prog.arena_words,
            prog.const_base as usize + sim.compiled().consts.len()
        );
    }

    #[test]
    fn threaded_matches_essential_values_and_counters() {
        let g = gsim_firrtl::compile(ALU).unwrap();
        let mut jit = Simulator::compile(&g, &SimOptions::threaded()).unwrap();
        let mut interp = Simulator::compile(&g, &SimOptions::default()).unwrap();
        let stim = [
            (3u64, 0u64, 0x85u64, 0x7fu64),
            (250, 7, 0x80, 0x80),
            (0, 0, 0x00, 0xff),
            (255, 255, 0x01, 0x85),
        ];
        for (a, b, sa, sb) in stim {
            for sim in [&mut jit, &mut interp] {
                sim.poke_u64("a", a).unwrap();
                sim.poke_u64("b", b).unwrap();
                sim.poke_u64("sa", sa).unwrap();
                sim.poke_u64("sb", sb).unwrap();
                sim.step();
            }
            for out in ["sum", "d", "r", "cmp", "m", "red"] {
                assert_eq!(jit.peek(out), interp.peek(out), "{out} at a={a} b={b}");
            }
        }
        assert_eq!(
            jit.counters(),
            interp.counters(),
            "threaded dispatch must be counter-invisible"
        );
    }

    /// Two compiles of the same graph must agree word for word on
    /// state layout, flags, and counters — the threaded backend's
    /// counter-identity proptest compares across compiles and found a
    /// hash-ordered sibling merge in the partitioner that made this
    /// flaky (the layout permuted between runs).
    #[test]
    fn compile_is_deterministic_across_runs() {
        let params = gsim_designs::SynthParams {
            name: "prop".into(),
            lanes: 2,
            fu_chains: 2,
            fu_depth: 4,
            fus_per_lane: 2,
            seed: 17210762318937571214,
        };
        let graph = gsim_designs::synth_core(&params);
        let mut tj = Simulator::compile(&graph, &SimOptions::threaded()).unwrap();
        let mut es = Simulator::compile(&graph, &SimOptions::default()).unwrap();
        for sim in [&mut tj, &mut es] {
            sim.poke_u64("reset", 1).ok();
            sim.run(2);
            sim.poke_u64("reset", 0).ok();
            sim.reset_counters();
        }
        assert_eq!(tj.state_prefix(), es.state_prefix(), "state after reset");
        assert_eq!(tj.flag_words(), es.flag_words(), "flags after reset");
        let ht: Vec<_> = (0..64)
            .map_while(|l| tj.input_handle(&format!("op_in_{l}")))
            .collect();
        let he: Vec<_> = (0..64)
            .map_while(|l| es.input_handle(&format!("op_in_{l}")))
            .collect();
        for c in 0..22u64 {
            tj.run_driven(1, |_, frame| {
                for (l, h) in ht.iter().enumerate() {
                    let v = c
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .rotate_left(l as u32 * 11)
                        ^ 0x5bd1_e995;
                    frame.set(*h, v);
                }
            });
            es.run_driven(1, |_, frame| {
                for (l, h) in he.iter().enumerate() {
                    let v = c
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .rotate_left(l as u32 * 11)
                        ^ 0x5bd1_e995;
                    frame.set(*h, v);
                }
            });
            assert_eq!(tj.state_prefix(), es.state_prefix(), "state at cycle {c}");
            assert_eq!(tj.counters(), es.counters(), "counters at cycle {c}");
        }
    }
}
