//! Value storage: slot references, state arenas, memory arenas.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which arena a [`Slot`] lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Space {
    /// Persistent signal state (node values, register shadows).
    State,
    /// Per-evaluation scratch (expression temporaries).
    Scratch,
    /// Read-only constant pool.
    Const,
}

/// A reference to a value slot: arena + word offset + type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Slot {
    pub space: Space,
    /// Word offset within the arena.
    pub off: u32,
    /// Number of words.
    pub words: u16,
    /// Logical width in bits (canonical form: upper bits zero).
    pub width: u32,
    /// Signed interpretation.
    pub signed: bool,
}

impl Slot {
    pub(crate) fn state(off: u32, width: u32, signed: bool) -> Slot {
        Slot {
            space: Space::State,
            off,
            words: gsim_value::words_for(width) as u16,
            width,
            signed,
        }
    }

    pub(crate) fn scratch(off: u32, width: u32, signed: bool) -> Slot {
        Slot {
            space: Space::Scratch,
            off,
            words: gsim_value::words_for(width) as u16,
            width,
            signed,
        }
    }

    pub(crate) fn constant(off: u32, width: u32, signed: bool) -> Slot {
        Slot {
            space: Space::Const,
            off,
            words: gsim_value::words_for(width) as u16,
            width,
            signed,
        }
    }
}

/// Abstraction over the persistent state arena so the same interpreter
/// runs single-threaded (plain `u64` words, zero overhead) and
/// multithreaded (relaxed atomics; barriers between levels provide the
/// ordering).
pub(crate) trait StateStore {
    fn load(&self, i: usize) -> u64;
    fn store(&mut self, i: usize, v: u64);
}

impl StateStore for &mut [u64] {
    #[inline(always)]
    fn load(&self, i: usize) -> u64 {
        self[i]
    }

    #[inline(always)]
    fn store(&mut self, i: usize, v: u64) {
        self[i] = v;
    }
}

/// Shared-atomic view used by the multithreaded engine. Stores are
/// Relaxed: each slot is written by exactly one task per cycle and read
/// only from later levels, with a barrier between levels.
pub(crate) struct AtomicStateRef<'a>(pub &'a [AtomicU64]);

impl StateStore for AtomicStateRef<'_> {
    #[inline(always)]
    fn load(&self, i: usize) -> u64 {
        self.0[i].load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn store(&mut self, i: usize, v: u64) {
        self.0[i].store(v, Ordering::Relaxed);
    }
}

/// A simulated memory: `depth` entries of `width` bits, stored as flat
/// words.
///
/// The word storage lives behind an [`Arc`] with copy-on-write
/// semantics: `clone()` (and hence every snapshot) *shares* the
/// underlying allocation, and the backing words are copied only when
/// a write lands on an arena whose storage is shared
/// ([`Arc::make_mut`]). A read-only arena — a ROM image loaded once —
/// therefore costs one allocation total no matter how many snapshots
/// or forked simulators reference it.
#[derive(Debug, Clone)]
pub struct MemArena {
    /// Memory name (for the load/peek API).
    pub name: String,
    /// Entries.
    pub depth: u64,
    /// Entry width in bits.
    pub width: u32,
    words_per_entry: usize,
    data: Arc<Vec<u64>>,
}

impl MemArena {
    pub(crate) fn new(name: String, depth: u64, width: u32) -> MemArena {
        let words_per_entry = gsim_value::words_for(width).max(1);
        MemArena {
            name,
            depth,
            width,
            words_per_entry,
            data: Arc::new(vec![0; words_per_entry * depth as usize]),
        }
    }

    /// Words of entry `addr`, or `None` when out of range.
    #[inline]
    pub fn entry(&self, addr: u64) -> Option<&[u64]> {
        if addr >= self.depth {
            return None;
        }
        let base = addr as usize * self.words_per_entry;
        Some(&self.data[base..base + self.words_per_entry])
    }

    /// Words per entry (at least 1).
    #[inline]
    pub(crate) fn words_per_entry(&self) -> usize {
        self.words_per_entry
    }

    /// The whole arena's flat word storage (entry `i` at
    /// `i * words_per_entry`), for bulk snapshot/copy-back.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.data
    }

    /// Mutable view of the flat word storage. Unshares the backing
    /// allocation first when snapshots still reference it (CoW).
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Mutable words of entry `addr`. Unshares the backing allocation
    /// first when snapshots still reference it (CoW).
    #[inline]
    pub(crate) fn entry_mut(&mut self, addr: u64) -> Option<&mut [u64]> {
        if addr >= self.depth {
            return None;
        }
        let base = addr as usize * self.words_per_entry;
        Some(&mut Arc::make_mut(&mut self.data)[base..base + self.words_per_entry])
    }

    /// `true` when this arena and `other` share the same backing
    /// allocation (neither side has written since the clone) — the
    /// copy-on-write accounting hook for snapshot-size measurement.
    #[inline]
    pub fn shares_storage_with(&self, other: &MemArena) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Size of the backing word storage in bytes (what a deep clone
    /// of this arena would copy).
    #[inline]
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }

    /// Loads an image of `u64` entries starting at address 0.
    pub(crate) fn load_image(&mut self, image: &[u64]) -> Result<(), crate::GsimError> {
        if image.len() as u64 > self.depth {
            return Err(crate::GsimError::MemImageTooLarge {
                name: self.name.clone(),
                depth: self.depth,
                len: image.len(),
            });
        }
        let mask = if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let wpe = self.words_per_entry;
        let data = Arc::make_mut(&mut self.data);
        for (i, &w) in image.iter().enumerate() {
            let base = i * wpe;
            data[base] = w & mask;
            for k in 1..wpe {
                data[base + k] = 0;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_arena_bounds() {
        let mut m = MemArena::new("m".into(), 4, 96);
        assert_eq!(m.words_per_entry, 2);
        assert!(m.entry(3).is_some());
        assert!(m.entry(4).is_none());
        m.entry_mut(2).unwrap()[0] = 77;
        assert_eq!(m.entry(2).unwrap()[0], 77);
    }

    #[test]
    fn image_masks_to_width() {
        let mut m = MemArena::new("m".into(), 4, 8);
        m.load_image(&[0x1ff, 2, 3]).unwrap();
        assert_eq!(m.entry(0).unwrap()[0], 0xff);
        assert!(m.load_image(&[0; 5]).is_err());
    }

    #[test]
    fn clone_shares_until_first_write() {
        let mut m = MemArena::new("m".into(), 8, 64);
        m.load_image(&[1, 2, 3]).unwrap();
        let snap = m.clone();
        assert!(m.shares_storage_with(&snap));
        assert_eq!(m.storage_bytes(), 64);
        m.entry_mut(0).unwrap()[0] = 99;
        assert!(!m.shares_storage_with(&snap));
        assert_eq!(snap.entry(0).unwrap()[0], 1);
        assert_eq!(m.entry(0).unwrap()[0], 99);
    }

    #[test]
    fn atomic_store_roundtrip() {
        let cells: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let mut s = AtomicStateRef(&cells);
        s.store(2, 99);
        assert_eq!(s.load(2), 99);
    }
}
