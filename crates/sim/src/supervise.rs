//! Session supervision: crash recovery by checkpoint + journal replay.
//!
//! A [`SupervisedSession`] wraps any `Box<dyn Session>` and makes it
//! survive the death of the backend behind it. It keeps two pieces of
//! recovery state:
//!
//! * a **checkpoint** — the backend's full state exported through
//!   [`Session::export_state`], refreshed automatically every
//!   [`SuperviseOptions::checkpoint_every`] cycles;
//! * a **journal** — every state-mutating command (pokes, memory
//!   loads, driven frames, steps) accepted since that checkpoint.
//!
//! When an operation fails with a fatal error ([`GsimError::is_fatal`]
//! — the child died, the socket reset, a deadline expired), the
//! supervisor respawns a fresh backend through its factory closure,
//! imports the checkpoint, replays the journal, and retries the
//! failed operation. Because every backend is deterministic and the
//! checkpoint captures the complete state (including counters), the
//! recovered session is **bit-identical** to one that never crashed —
//! pinned by the chaos suite, which kills the AoT child mid-run and
//! diffs the outcome against an uninterrupted reference run.
//!
//! Backends that cannot export state (the default
//! [`Session::export_state`] returns `Ok(None)`) are still supervised:
//! the journal then runs from cycle 0 and recovery replays the whole
//! history. One restriction applies in that mode: after
//! [`Session::restore`] to a backend-held snapshot, the journal no
//! longer describes the state and recovery is refused.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::session::{GsimError, MemoryInfo, Session, SessionFrame, SignalInfo, SnapshotId};
use crate::Counters;
use gsim_value::Value;

/// Knobs for [`SupervisedSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseOptions {
    /// Auto-checkpoint period in cycles (`0` disables periodic
    /// checkpoints; the journal then grows until an explicit
    /// snapshot). Smaller periods bound replay work after a crash at
    /// the cost of more frequent state exports.
    pub checkpoint_every: u64,
    /// How many successful recoveries to perform before giving up and
    /// surfacing [`GsimError::SessionLost`] to the caller.
    pub max_recoveries: u32,
}

impl Default for SuperviseOptions {
    fn default() -> SuperviseOptions {
        SuperviseOptions {
            checkpoint_every: 4096,
            max_recoveries: 3,
        }
    }
}

/// Timing breakdown of one completed recovery, from
/// [`SupervisedSession::last_recovery`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStats {
    /// Wire class of the error that triggered recovery
    /// (`session-lost`, `timeout`, `io`, `backend`).
    pub trigger: String,
    /// How long the failing operation ran before the fault surfaced
    /// (EOF detection is immediate; a stall costs the deadline).
    pub detect_s: f64,
    /// Time to spawn the replacement backend via the factory.
    pub respawn_s: f64,
    /// Time to import the checkpoint into the replacement.
    pub restore_s: f64,
    /// Time to replay the journal on top of the checkpoint.
    pub replay_s: f64,
    /// Cycles re-executed during journal replay.
    pub replayed_cycles: u64,
    /// Journal entries replayed.
    pub journal_len: usize,
}

impl RecoveryStats {
    /// Total recovery time (respawn + restore + replay), excluding
    /// detection.
    pub fn total_s(&self) -> f64 {
        self.respawn_s + self.restore_s + self.replay_s
    }
}

/// One state-mutating command, as recorded in the journal.
#[derive(Debug, Clone)]
enum Cmd {
    Poke(String, Value),
    Load(String, Vec<u64>),
    /// One driven cycle: the frame's pokes, then a single step.
    Frame(Vec<(String, u64)>),
    Step(u64),
}

/// Factory that (re)creates the underlying backend session.
pub type SessionFactory = Box<dyn FnMut() -> Result<Box<dyn Session>, GsimError>>;

/// A fault-tolerant wrapper around any [`Session`] (see the module
/// docs for the recovery model).
pub struct SupervisedSession {
    inner: Box<dyn Session>,
    respawn: SessionFactory,
    opts: SuperviseOptions,
    /// Exported state underlying the journal, if the backend supports
    /// export; `None` means the journal runs from cycle 0.
    checkpoint: Option<Vec<u8>>,
    exportable: bool,
    journal: Vec<Cmd>,
    since_checkpoint: u64,
    /// Exported states backing our snapshot ids (exportable mode
    /// only — they survive backend crashes, unlike backend-held ids).
    snaps: HashMap<u64, Vec<u8>>,
    next_snap: u64,
    /// Set when the journal stopped describing the live state (an
    /// in-backend restore without export support): recovery refused.
    unreplayable: Option<String>,
    recoveries: u32,
    last_recovery: Option<RecoveryStats>,
}

impl SupervisedSession {
    /// Builds the first backend via `respawn` and wraps it. If the
    /// backend supports state export, its initial state becomes the
    /// first checkpoint.
    ///
    /// # Errors
    ///
    /// Whatever the factory's first invocation returns.
    pub fn new(mut respawn: SessionFactory, opts: SuperviseOptions) -> Result<Self, GsimError> {
        let mut inner = respawn()?;
        let checkpoint = inner.export_state()?;
        let exportable = checkpoint.is_some();
        Ok(SupervisedSession {
            inner,
            respawn,
            opts,
            checkpoint,
            exportable,
            journal: Vec::new(),
            since_checkpoint: 0,
            snaps: HashMap::new(),
            next_snap: 0,
            unreplayable: None,
            recoveries: 0,
            last_recovery: None,
        })
    }

    /// Successful recoveries performed so far.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }

    /// Timing breakdown of the most recent recovery, if any.
    pub fn last_recovery(&self) -> Option<&RecoveryStats> {
        self.last_recovery.as_ref()
    }

    /// Journal entries accumulated since the last checkpoint.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// `true` if the backend supports state export (bounded-replay
    /// recovery); `false` means recovery replays from cycle 0.
    pub fn exportable(&self) -> bool {
        self.exportable
    }

    /// Runs `f` against the backend; on a fatal failure, recovers
    /// (respawn + checkpoint import + journal replay) and retries `f`
    /// on the replacement, up to [`SuperviseOptions::max_recoveries`]
    /// times across the session's lifetime.
    fn attempt<T>(
        &mut self,
        f: &mut dyn FnMut(&mut dyn Session) -> Result<T, GsimError>,
    ) -> Result<T, GsimError> {
        loop {
            let started = Instant::now();
            match f(self.inner.as_mut()) {
                Err(e) if e.is_fatal() => self.recover(&e, started.elapsed())?,
                r => return r,
            }
        }
    }

    /// Respawn + restore + replay. On success the backend is back at
    /// exactly the pre-fault journaled state.
    fn recover(&mut self, trigger: &GsimError, detect: Duration) -> Result<(), GsimError> {
        if let Some(why) = &self.unreplayable {
            return Err(GsimError::SessionLost(format!(
                "unrecoverable ({why}); original error: {trigger}"
            )));
        }
        if self.recoveries >= self.opts.max_recoveries {
            return Err(GsimError::SessionLost(format!(
                "gave up after {} recoveries; latest error: {trigger}",
                self.recoveries
            )));
        }
        let spawn_started = Instant::now();
        let fresh = (self.respawn)()?;
        // Replace first so the dead backend is dropped (and its child
        // process reaped) before we start driving the replacement.
        drop(std::mem::replace(&mut self.inner, fresh));
        let respawn_s = spawn_started.elapsed().as_secs_f64();

        let restore_started = Instant::now();
        if let Some(state) = &self.checkpoint {
            self.inner.import_state(state)?;
        }
        let restore_s = restore_started.elapsed().as_secs_f64();

        let replay_started = Instant::now();
        let journal = std::mem::take(&mut self.journal);
        let replayed = apply_journal(self.inner.as_mut(), &journal);
        let journal_len = journal.len();
        self.journal = journal;
        let replayed_cycles = replayed?;
        self.recoveries += 1;
        self.last_recovery = Some(RecoveryStats {
            trigger: trigger.wire_class().to_string(),
            detect_s: detect.as_secs_f64(),
            respawn_s,
            restore_s,
            replay_s: replay_started.elapsed().as_secs_f64(),
            replayed_cycles,
            journal_len,
        });
        Ok(())
    }

    /// The largest step/run chunk that keeps the checkpoint cadence.
    fn chunk(&self, left: u64) -> u64 {
        if !self.exportable || self.opts.checkpoint_every == 0 {
            return left;
        }
        left.min(
            self.opts
                .checkpoint_every
                .saturating_sub(self.since_checkpoint)
                .max(1),
        )
    }

    /// Refreshes the checkpoint (and truncates the journal) once the
    /// cadence is due. A failed export is not fatal to the run — the
    /// journal simply keeps growing and we try again next chunk.
    fn maybe_checkpoint(&mut self) {
        if !self.exportable
            || self.opts.checkpoint_every == 0
            || self.since_checkpoint < self.opts.checkpoint_every
        {
            return;
        }
        if let Ok(Some(state)) = self.attempt(&mut |s| s.export_state()) {
            self.checkpoint = Some(state);
            self.journal.clear();
            self.since_checkpoint = 0;
        }
    }
}

/// Replays a journal onto `inner`, batching consecutive stepping
/// commands into pipelined [`Session::run_driven`] calls. Returns the
/// number of cycles re-executed.
#[allow(deprecated)] // replay targets the backend's pipelined driven-run path
fn apply_journal(inner: &mut dyn Session, journal: &[Cmd]) -> Result<u64, GsimError> {
    let mut replayed = 0u64;
    let mut i = 0;
    while i < journal.len() {
        match &journal[i] {
            Cmd::Poke(name, v) => {
                inner.poke(name, v.clone())?;
                i += 1;
            }
            Cmd::Load(name, image) => {
                inner.load_mem(name, image)?;
                i += 1;
            }
            Cmd::Frame(_) | Cmd::Step(_) => {
                // Expand a maximal run of stepping commands into
                // per-cycle poke lists and replay them as one driven
                // run (bounded round trips on remote backends).
                static EMPTY: &[(String, u64)] = &[];
                let mut frames: Vec<&[(String, u64)]> = Vec::new();
                while i < journal.len() {
                    match &journal[i] {
                        Cmd::Frame(pokes) => {
                            frames.push(pokes);
                            i += 1;
                        }
                        Cmd::Step(k) => {
                            frames.extend(std::iter::repeat_n(EMPTY, *k as usize));
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let n = frames.len() as u64;
                let mut idx = 0usize;
                inner.run_driven(n, &mut |_, frame| {
                    if let Some(pokes) = frames.get(idx) {
                        for (name, v) in *pokes {
                            frame.set(name, *v);
                        }
                    }
                    idx += 1;
                })?;
                replayed += n;
            }
        }
    }
    Ok(replayed)
}

impl Session for SupervisedSession {
    fn backend(&self) -> &'static str {
        "supervised"
    }

    fn cycle(&self) -> u64 {
        self.inner.cycle()
    }

    fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
        self.attempt(&mut |s| s.poke(name, v.clone()))?;
        self.journal.push(Cmd::Poke(name.to_string(), v));
        Ok(())
    }

    fn peek(&mut self, name: &str) -> Result<Value, GsimError> {
        self.attempt(&mut |s| s.peek(name))
    }

    fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError> {
        self.attempt(&mut |s| s.load_mem(name, image))?;
        self.journal
            .push(Cmd::Load(name.to_string(), image.to_vec()));
        Ok(())
    }

    fn step(&mut self, n: u64) -> Result<(), GsimError> {
        let mut left = n;
        while left > 0 {
            let chunk = self.chunk(left);
            self.attempt(&mut |s| s.step(chunk))?;
            self.journal.push(Cmd::Step(chunk));
            self.since_checkpoint += chunk;
            left -= chunk;
            self.maybe_checkpoint();
        }
        Ok(())
    }

    #[allow(deprecated)] // the journaling override must shadow the shim
    fn run_driven(
        &mut self,
        n: u64,
        drive: &mut dyn FnMut(u64, &mut SessionFrame),
    ) -> Result<(), GsimError> {
        let mut first_err: Option<GsimError> = None;
        let mut done = 0u64;
        while done < n {
            let chunk = self.chunk(n - done);
            let base = self.inner.cycle();
            // Record the chunk's stimulus exactly once, so a recovery
            // retry re-drives the same frames without calling the
            // user's closure twice for the same cycle.
            let mut frames: Vec<Vec<(String, u64)>> = Vec::with_capacity(chunk as usize);
            let mut sf = SessionFrame::default();
            for k in 0..chunk {
                sf.clear();
                drive(base + k, &mut sf);
                frames.push(sf.pokes().to_vec());
            }
            let res = self.attempt(&mut |s| {
                let mut idx = 0usize;
                s.run_driven(chunk, &mut |_, frame| {
                    if let Some(pokes) = frames.get(idx) {
                        for (name, v) in pokes {
                            frame.set(name, *v);
                        }
                    }
                    idx += 1;
                })
            });
            match res {
                Ok(()) => {}
                Err(e) if e.is_fatal() => return Err(e),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            };
            // The backend ran all `chunk` cycles (the trait contract
            // even under non-fatal poke errors), so journal them.
            self.journal.extend(frames.into_iter().map(Cmd::Frame));
            done += chunk;
            self.since_checkpoint += chunk;
            self.maybe_checkpoint();
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn trace_start(
        &mut self,
        signals: Option<&[String]>,
        sink: Box<dyn gsim_wave::WaveSink>,
    ) -> Result<(), GsimError> {
        // Forwarded directly rather than via `attempt`: the sink is a
        // linear resource, so a crash recovery cannot re-arm it. A
        // trace that was active when the inner session died simply
        // ends at the crash cycle; the replacement session comes back
        // untraced.
        self.inner.trace_start(signals, sink)
    }

    fn trace_stop(&mut self) -> Result<(), GsimError> {
        self.inner.trace_stop()
    }

    fn counters(&mut self) -> Result<Counters, GsimError> {
        self.attempt(&mut |s| s.counters())
    }

    fn snapshot(&mut self) -> Result<SnapshotId, GsimError> {
        if !self.exportable {
            // Delegate; the id lives in the backend, so a later
            // restore to it forfeits crash recovery (see `restore`).
            return self.attempt(&mut |s| s.snapshot());
        }
        let state = self
            .attempt(&mut |s| s.export_state())?
            .ok_or_else(|| GsimError::Backend("state export vanished mid-session".into()))?;
        let id = self.next_snap;
        self.next_snap += 1;
        self.snaps.insert(id, state);
        Ok(SnapshotId::from_raw(id))
    }

    fn restore(&mut self, id: SnapshotId) -> Result<(), GsimError> {
        if !self.exportable {
            self.attempt(&mut |s| s.restore(id))?;
            self.unreplayable =
                Some("restored a backend-held snapshot on a backend without state export".into());
            return Ok(());
        }
        let state = self
            .snaps
            .get(&id.raw())
            .cloned()
            .ok_or(GsimError::UnknownSnapshot(id.raw()))?;
        self.attempt(&mut |s| s.import_state(&state))?;
        // The snapshot is now the state of record: journal restarts
        // here and recovery reimports it.
        self.checkpoint = Some(state);
        self.journal.clear();
        self.since_checkpoint = 0;
        Ok(())
    }

    fn inputs(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
        self.attempt(&mut |s| s.inputs())
    }

    fn signals(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
        self.attempt(&mut |s| s.signals())
    }

    fn memories(&mut self) -> Result<Vec<MemoryInfo>, GsimError> {
        self.attempt(&mut |s| s.memories())
    }

    fn clone_at_snapshot(&mut self) -> Result<Box<dyn Session + Send>, GsimError> {
        // The fork is a plain (unsupervised) child: callers that fan
        // out forks — the explorer — carry their own recovery factory,
        // so wrapping each child in a supervisor would duplicate the
        // journal for no benefit.
        self.attempt(&mut |s| s.clone_at_snapshot())
    }

    fn export_state(&mut self) -> Result<Option<Vec<u8>>, GsimError> {
        self.attempt(&mut |s| s.export_state())
    }

    fn import_state(&mut self, state: &[u8]) -> Result<(), GsimError> {
        self.attempt(&mut |s| s.import_state(state))?;
        if self.exportable {
            self.checkpoint = Some(state.to_vec());
        }
        self.journal.clear();
        self.since_checkpoint = 0;
        Ok(())
    }
}

impl std::fmt::Debug for SupervisedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedSession")
            .field("backend", &self.inner.backend())
            .field("cycle", &self.inner.cycle())
            .field("exportable", &self.exportable)
            .field("journal_len", &self.journal.len())
            .field("recoveries", &self.recoveries)
            .finish()
    }
}

#[cfg(test)]
#[allow(deprecated)] // the mock backend and tests pin the legacy driven-run path
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared control block: which absolute cycles kill the "backend",
    /// and how many times the factory ran.
    #[derive(Default)]
    struct Ctrl {
        kills: Vec<u64>,
        spawns: u32,
        exportable: bool,
    }

    /// A deterministic in-process stand-in for a crashy backend: one
    /// input `in`, one register `acc` folding the input every cycle.
    struct MockSim {
        ctrl: Rc<RefCell<Ctrl>>,
        cycle: u64,
        acc: u64,
        pending: u64,
        dead: bool,
    }

    impl MockSim {
        fn lost(&mut self) -> GsimError {
            self.dead = true;
            GsimError::SessionLost("mock child exited".into())
        }

        fn guard(&mut self) -> Result<(), GsimError> {
            if self.dead {
                return Err(GsimError::SessionLost("mock child exited".into()));
            }
            Ok(())
        }

        fn one_cycle(&mut self) -> Result<(), GsimError> {
            let due = {
                let mut ctrl = self.ctrl.borrow_mut();
                if ctrl.kills.first() == Some(&self.cycle) {
                    ctrl.kills.remove(0);
                    true
                } else {
                    false
                }
            };
            if due {
                return Err(self.lost());
            }
            self.acc = self.acc.wrapping_mul(3).wrapping_add(self.pending);
            self.cycle += 1;
            Ok(())
        }
    }

    impl Session for MockSim {
        fn backend(&self) -> &'static str {
            "mock"
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
            self.guard()?;
            if name != "in" {
                return Err(GsimError::UnknownSignal(name.to_string()));
            }
            self.pending = v.to_u64().unwrap_or(0);
            Ok(())
        }
        fn peek(&mut self, name: &str) -> Result<Value, GsimError> {
            self.guard()?;
            match name {
                "acc" => Ok(Value::from_u64(self.acc, 64)),
                "in" => Ok(Value::from_u64(self.pending, 64)),
                _ => Err(GsimError::UnknownSignal(name.to_string())),
            }
        }
        fn load_mem(&mut self, name: &str, _image: &[u64]) -> Result<(), GsimError> {
            self.guard()?;
            Err(GsimError::UnknownMemory(name.to_string()))
        }
        fn step(&mut self, n: u64) -> Result<(), GsimError> {
            self.guard()?;
            for _ in 0..n {
                self.one_cycle()?;
            }
            Ok(())
        }
        fn run_driven(
            &mut self,
            n: u64,
            drive: &mut dyn FnMut(u64, &mut SessionFrame),
        ) -> Result<(), GsimError> {
            self.guard()?;
            let mut frame = SessionFrame::default();
            for _ in 0..n {
                frame.clear();
                drive(self.cycle, &mut frame);
                for (name, v) in frame.pokes() {
                    self.poke(name, Value::from_u64(*v, 64))?;
                }
                self.one_cycle()?;
            }
            Ok(())
        }
        fn counters(&mut self) -> Result<Counters, GsimError> {
            self.guard()?;
            Ok(Counters {
                cycles: self.cycle,
                node_evals: self.cycle * 2,
                ..Counters::default()
            })
        }
        fn snapshot(&mut self) -> Result<SnapshotId, GsimError> {
            self.guard()?;
            // Backend-held snapshots die with the process; the mock
            // encodes the state in the id to keep the test honest.
            Ok(SnapshotId::from_raw(self.cycle))
        }
        fn restore(&mut self, id: SnapshotId) -> Result<(), GsimError> {
            self.guard()?;
            self.cycle = id.raw();
            self.acc = 0;
            Ok(())
        }
        fn inputs(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
            Ok(vec![SignalInfo {
                name: "in".into(),
                width: 64,
            }])
        }
        fn signals(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
            Ok(vec![SignalInfo {
                name: "acc".into(),
                width: 64,
            }])
        }
        fn memories(&mut self) -> Result<Vec<MemoryInfo>, GsimError> {
            Ok(Vec::new())
        }
        fn export_state(&mut self) -> Result<Option<Vec<u8>>, GsimError> {
            self.guard()?;
            if !self.ctrl.borrow().exportable {
                return Ok(None);
            }
            Ok(Some(
                format!("{}.{}.{}", self.cycle, self.acc, self.pending).into_bytes(),
            ))
        }
        fn import_state(&mut self, state: &[u8]) -> Result<(), GsimError> {
            self.guard()?;
            let text = std::str::from_utf8(state)
                .map_err(|_| GsimError::Protocol("bad state blob".into()))?;
            let mut it = text.split('.');
            let mut next = || {
                it.next()
                    .and_then(|t| t.parse::<u64>().ok())
                    .ok_or_else(|| GsimError::Protocol("bad state blob".into()))
            };
            self.cycle = next()?;
            self.acc = next()?;
            self.pending = next()?;
            Ok(())
        }
    }

    fn factory(ctrl: &Rc<RefCell<Ctrl>>) -> SessionFactory {
        let ctrl = Rc::clone(ctrl);
        Box::new(move || {
            ctrl.borrow_mut().spawns += 1;
            Ok(Box::new(MockSim {
                ctrl: Rc::clone(&ctrl),
                cycle: 0,
                acc: 0,
                pending: 0,
                dead: false,
            }) as Box<dyn Session>)
        })
    }

    fn ctrl(kills: &[u64], exportable: bool) -> Rc<RefCell<Ctrl>> {
        Rc::new(RefCell::new(Ctrl {
            kills: kills.to_vec(),
            spawns: 0,
            exportable,
        }))
    }

    /// Reference run: the same stimulus on a backend that never dies.
    fn clean_run(cycles: u64) -> (u64, Counters) {
        let c = ctrl(&[], true);
        let mut sim = factory(&c)().unwrap();
        sim.run_driven(cycles, &mut |at, f| f.set("in", at * 7 + 1))
            .unwrap();
        let acc = sim.peek_u64("acc").unwrap().unwrap();
        (acc, sim.counters().unwrap())
    }

    #[test]
    fn recovery_is_bit_identical_with_checkpoints() {
        let c = ctrl(&[13, 29], true);
        let mut sup = SupervisedSession::new(
            factory(&c),
            SuperviseOptions {
                checkpoint_every: 8,
                max_recoveries: 4,
            },
        )
        .unwrap();
        sup.run_driven(48, &mut |at, f| f.set("in", at * 7 + 1))
            .unwrap();
        let (acc, counters) = clean_run(48);
        assert_eq!(sup.peek_u64("acc").unwrap(), Some(acc));
        assert_eq!(sup.counters().unwrap(), counters);
        assert_eq!(sup.recoveries(), 2);
        assert_eq!(c.borrow().spawns, 3);
        let stats = sup.last_recovery().unwrap();
        // Bounded replay: never more than one checkpoint period.
        assert!(
            stats.replayed_cycles <= 8,
            "replayed {} cycles",
            stats.replayed_cycles
        );
    }

    #[test]
    fn recovery_replays_from_zero_without_export() {
        let c = ctrl(&[21], false);
        let mut sup = SupervisedSession::new(factory(&c), SuperviseOptions::default()).unwrap();
        assert!(!sup.exportable());
        // Two calls so the first chunk is in the journal when the
        // second one crashes: recovery must replay it from cycle 0.
        sup.run_driven(16, &mut |at, f| f.set("in", at * 7 + 1))
            .unwrap();
        sup.run_driven(16, &mut |at, f| f.set("in", at * 7 + 1))
            .unwrap();
        let (acc, counters) = clean_run(32);
        assert_eq!(sup.peek_u64("acc").unwrap(), Some(acc));
        assert_eq!(sup.counters().unwrap(), counters);
        assert_eq!(sup.recoveries(), 1);
        assert_eq!(sup.last_recovery().unwrap().replayed_cycles, 16);
    }

    #[test]
    fn step_and_poke_paths_recover_too() {
        let c = ctrl(&[10], true);
        let mut sup = SupervisedSession::new(
            factory(&c),
            SuperviseOptions {
                checkpoint_every: 4,
                max_recoveries: 2,
            },
        )
        .unwrap();
        sup.poke_u64("in", 5).unwrap();
        sup.step(16).unwrap();
        assert_eq!(sup.recoveries(), 1);
        // Clean equivalent: poke 5 then 16 held-input cycles.
        let c2 = ctrl(&[], true);
        let mut clean = factory(&c2)().unwrap();
        clean.poke_u64("in", 5).unwrap();
        clean.step(16).unwrap();
        assert_eq!(sup.peek_u64("acc").unwrap(), clean.peek_u64("acc").unwrap());
        assert_eq!(sup.cycle(), 16);
    }

    #[test]
    fn gives_up_after_max_recoveries() {
        let c = ctrl(&[4, 5, 6], true);
        let mut sup = SupervisedSession::new(
            factory(&c),
            SuperviseOptions {
                checkpoint_every: 0,
                max_recoveries: 2,
            },
        )
        .unwrap();
        let err = sup.step(64).unwrap_err();
        assert!(matches!(err, GsimError::SessionLost(_)), "{err}");
        assert_eq!(sup.recoveries(), 2);
    }

    #[test]
    fn snapshots_survive_crashes() {
        let c = ctrl(&[25], true);
        let mut sup = SupervisedSession::new(
            factory(&c),
            SuperviseOptions {
                checkpoint_every: 8,
                max_recoveries: 2,
            },
        )
        .unwrap();
        sup.run_driven(10, &mut |at, f| f.set("in", at + 1))
            .unwrap();
        let at10 = sup.peek_u64("acc").unwrap();
        let snap = sup.snapshot().unwrap();
        // Continue across a crash at cycle 25, then roll back.
        sup.run_driven(20, &mut |at, f| f.set("in", at + 1))
            .unwrap();
        assert_eq!(sup.recoveries(), 1);
        sup.restore(snap).unwrap();
        assert_eq!(sup.cycle(), 10);
        assert_eq!(sup.peek_u64("acc").unwrap(), at10);
        // And the restored timeline replays identically.
        sup.run_driven(20, &mut |at, f| f.set("in", at + 1))
            .unwrap();
        let c2 = ctrl(&[], true);
        let mut clean = factory(&c2)().unwrap();
        clean
            .run_driven(30, &mut |at, f| f.set("in", at + 1))
            .unwrap();
        assert_eq!(sup.peek_u64("acc").unwrap(), clean.peek_u64("acc").unwrap());
    }

    #[test]
    fn inner_restore_without_export_forfeits_recovery() {
        let c = ctrl(&[20], false);
        let mut sup = SupervisedSession::new(factory(&c), SuperviseOptions::default()).unwrap();
        sup.step(5).unwrap();
        let snap = sup.snapshot().unwrap();
        sup.restore(snap).unwrap();
        let err = sup.step(30).unwrap_err();
        assert!(matches!(err, GsimError::SessionLost(_)), "{err}");
        assert_eq!(sup.recoveries(), 0);
    }

    #[test]
    fn non_fatal_errors_do_not_trigger_recovery() {
        let c = ctrl(&[], true);
        let mut sup = SupervisedSession::new(factory(&c), SuperviseOptions::default()).unwrap();
        let err = sup.poke_u64("nonesuch", 1).unwrap_err();
        assert!(matches!(err, GsimError::UnknownSignal(_)));
        assert_eq!(sup.recoveries(), 0);
        assert_eq!(c.borrow().spawns, 1);
        assert_eq!(sup.journal_len(), 0);
    }
}
