//! The engine-agnostic executor core.
//!
//! Every engine family is a thin driver over the routines in this
//! module: instruction-stream sweeps ([`run_task_range`],
//! [`eval_supernode`]), essential-signal scans ([`sweep_essential`],
//! [`sweep_level_slice`]), successor activation ([`activate`]) and the
//! commit phase ([`commit_full_cycle`], [`commit_essential`]). The
//! routines are generic over three small traits so the *same* code
//! runs single-threaded and multithreaded:
//!
//! * [`StateStore`] (from [`crate::storage`]) — plain words vs shared
//!   relaxed atomics for the signal state;
//! * [`ActiveBits`] — plain words vs shared atomic words for the
//!   supernode active/fired bitsets (cross-thread activation is a
//!   relaxed `fetch_or`; level barriers order cross-level visibility);
//! * [`MemWrite`] — in-place vs atomic memory arenas for the commit
//!   phase's write ports.
//!
//! [`SpinBarrier`] is the level barrier of both parallel engines: a
//! sense-reversing spin barrier, roughly an order of magnitude cheaper
//! per rendezvous than `std::sync::Barrier`, which matters when a
//! design has dozens of levels per simulated cycle.

use crate::compile::{Compiled, TaskKind};
use crate::counters::Counters;
use crate::exec::{self, Ctx, MemStore};
use crate::storage::{MemArena, Slot, Space, StateStore};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

// ---------------------------------------------------------- active bits

/// A word-addressed supernode bitset (the active flags and the fired
/// set), abstracting plain words (sequential engines) over shared
/// atomics (parallel engines).
pub(crate) trait ActiveBits {
    /// Current value of word `w`.
    fn load_word(&self, w: usize) -> u64;
    /// ORs `mask` into word `w`.
    fn or_word(&mut self, w: usize, mask: u64);
    /// Clears the bits of `mask` in word `w`.
    fn clear_word(&mut self, w: usize, mask: u64);

    /// Sets supernode `sn`'s bit.
    #[inline]
    fn set_bit(&mut self, sn: u32) {
        self.or_word((sn >> 6) as usize, 1u64 << (sn & 63));
    }
}

impl ActiveBits for &mut [u64] {
    #[inline(always)]
    fn load_word(&self, w: usize) -> u64 {
        self[w]
    }

    #[inline(always)]
    fn or_word(&mut self, w: usize, mask: u64) {
        self[w] |= mask;
    }

    #[inline(always)]
    fn clear_word(&mut self, w: usize, mask: u64) {
        self[w] &= !mask;
    }
}

/// Shared atomic bit words. All operations are relaxed RMWs: within a
/// level no two threads touch the same supernode's bit for claiming
/// (slices are disjoint), and activation targets strictly higher
/// levels, ordered by the level barrier.
#[derive(Clone, Copy)]
pub(crate) struct SharedBits<'a>(pub &'a [AtomicU64]);

impl ActiveBits for SharedBits<'_> {
    #[inline(always)]
    fn load_word(&self, w: usize) -> u64 {
        self.0[w].load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn or_word(&mut self, w: usize, mask: u64) {
        if mask != 0 {
            self.0[w].fetch_or(mask, Ordering::Relaxed);
        }
    }

    #[inline(always)]
    fn clear_word(&mut self, w: usize, mask: u64) {
        self.0[w].fetch_and(!mask, Ordering::Relaxed);
    }
}

/// Activation sink that drops everything: the full-cycle engines
/// evaluate every node every cycle, so nothing tracks activity.
pub(crate) struct NoActivation;

impl ActiveBits for NoActivation {
    #[inline(always)]
    fn load_word(&self, _w: usize) -> u64 {
        0
    }

    #[inline(always)]
    fn or_word(&mut self, _w: usize, _mask: u64) {}

    #[inline(always)]
    fn clear_word(&mut self, _w: usize, _mask: u64) {}
}

// ---------------------------------------------------------- activation

/// Successor activation (§III-B): branchless masked ORs for small
/// fan-outs, a branchy skip of the whole list for large ones.
#[inline]
pub(crate) fn activate<A: ActiveBits>(
    flags: &mut A,
    counters: &mut Counters,
    act_list: &[u32],
    act: (u32, u32),
    branchless: bool,
    changed: bool,
) {
    let (lo, hi) = act;
    if lo == hi {
        return;
    }
    let list = &act_list[lo as usize..hi as usize];
    if branchless {
        // ESSENT-style: unconditional ORs with a change mask.
        let mask = (changed as u64).wrapping_neg();
        for &sn in list {
            flags.or_word((sn >> 6) as usize, (1u64 << (sn & 63)) & mask);
        }
        counters.activation_ops += list.len() as u64;
        if changed {
            counters.activations += list.len() as u64;
        }
    } else {
        // Branchy: skip all work when unchanged.
        counters.activation_ops += 1;
        if changed {
            for &sn in list {
                flags.set_bit(sn);
            }
            counters.activation_ops += list.len() as u64;
            counters.activations += list.len() as u64;
        }
    }
}

// ---------------------------------------------------------- evaluation

/// Compares `result` against `out`; on difference copies and returns
/// `true`.
fn store_if_changed<S: StateStore, M: MemStore>(
    ctx: &mut Ctx<'_, S, M>,
    result: Slot,
    out: Slot,
) -> bool {
    if result == out {
        // value computed in place (pure-alias tasks): treat as changed
        // so successors stay conservative-correct.
        return true;
    }
    let n = out.words as usize;
    let mut changed = false;
    for i in 0..n {
        let new = match result.space {
            Space::State => ctx.state.load(result.off as usize + i),
            Space::Scratch => ctx.scratch[result.off as usize + i],
            Space::Const => ctx.consts[result.off as usize + i],
        };
        let off = out.off as usize + i;
        if ctx.state.load(off) != new {
            ctx.state.store(off, new);
            changed = true;
        }
    }
    changed
}

/// Runs the instruction streams of tasks `[lo, hi)` unconditionally,
/// skipping inputs — the full-cycle sweep shared by the sequential and
/// levelized-parallel drivers (Listing 1).
pub(crate) fn run_task_range<S: StateStore, M: MemStore>(
    ctx: &mut Ctx<'_, S, M>,
    c: &Compiled,
    lo: u32,
    hi: u32,
    counters: &mut Counters,
) {
    for task in &c.tasks[lo as usize..hi as usize] {
        if matches!(task.kind, TaskKind::Input) {
            continue;
        }
        exec::run_task(ctx, &c.image, task.code, task.narrow_only);
        counters.node_evals += 1;
        counters.instrs_executed += task.n_instrs as u64;
        counters.fused_executed += task.n_fused as u64;
    }
}

/// Evaluates one supernode: runs its tasks, compares-and-stores every
/// combinational result, and activates successors on change
/// (Listings 2–3). Marks the supernode in `fired` for register commit.
pub(crate) fn eval_supernode<S, M, A, F>(
    c: &Compiled,
    ctx: &mut Ctx<'_, S, M>,
    flags: &mut A,
    fired: &mut F,
    counters: &mut Counters,
    sn: usize,
) where
    S: StateStore,
    M: MemStore,
    A: ActiveBits,
    F: ActiveBits,
{
    fired.set_bit(sn as u32);
    counters.supernode_evals += 1;
    let (lo, hi) = c.supernode_tasks[sn];
    for task in &c.tasks[lo as usize..hi as usize] {
        if matches!(task.kind, TaskKind::Input) {
            continue;
        }
        counters.node_evals += 1;
        counters.instrs_executed += task.n_instrs as u64;
        counters.fused_executed += task.n_fused as u64;
        exec::run_task(ctx, &c.image, task.code, task.narrow_only);
        if matches!(task.kind, TaskKind::Comb) {
            let changed = store_if_changed(ctx, task.result, task.out);
            if changed {
                counters.value_changes += 1;
            }
            activate(
                flags,
                counters,
                &c.act_list,
                task.act,
                task.branchless,
                changed,
            );
        }
    }
}

// ------------------------------------------------------------- sweeps

/// One essential-signal sweep over every flag word in supernode-topo
/// order (Listings 2 and 4): the sequential essential driver.
///
/// Combinational activation only ever points forward in the supernode
/// topo order, but "forward" can land in the word currently being
/// drained — both modes therefore re-check bits set while processing
/// (clearing each bit before evaluation).
pub(crate) fn sweep_essential<S, M, A, F>(
    c: &Compiled,
    ctx: &mut Ctx<'_, S, M>,
    flags: &mut A,
    fired: &mut F,
    counters: &mut Counters,
    word_skip: bool,
) where
    S: StateStore,
    M: MemStore,
    A: ActiveBits,
    F: ActiveBits,
{
    let num_sn = c.num_supernodes;
    for w in 0..num_sn.div_ceil(64) {
        if word_skip {
            // Listing 4: one condition covers 64 active bits. Always
            // take the lowest *fresh* set bit so evaluation stays in
            // strict supernode-topo order even when processing a bit
            // activates a lower-numbered bit's successor in the same
            // word — a stale snapshot would evaluate out of order and
            // redo work.
            counters.aexam_checks += 1;
            loop {
                let bits = flags.load_word(w);
                if bits == 0 {
                    break;
                }
                let t = bits.trailing_zeros();
                flags.clear_word(w, 1u64 << t);
                counters.aexam_checks += 1;
                eval_supernode(c, ctx, flags, fired, counters, (w * 64) + t as usize);
            }
        } else {
            // ESSENT: one branch per supernode flag, ascending, so
            // forward activations in this word are seen below.
            let base = w * 64;
            let hi = (base + 64).min(num_sn);
            for sn in base..hi {
                counters.aexam_checks += 1;
                if flags.load_word(w) >> (sn - base) & 1 == 1 {
                    flags.clear_word(w, 1u64 << (sn - base));
                    eval_supernode(c, ctx, flags, fired, counters, sn);
                }
            }
        }
    }
}

/// Drains one thread's slice of one level's activated supernodes — the
/// parallel essential driver's inner loop.
///
/// `sns` is a sorted slice of same-level supernode indices owned
/// exclusively by this thread, so claims never contend; bits are still
/// cleared with an atomic RMW because other threads may concurrently
/// set *different* bits in the same word (activation of higher-level
/// supernodes). Activation from this level only ever targets higher
/// levels, so one snapshot per flag word is safe, and with `word_skip`
/// one load covers every slice member sharing that word (Listing 4
/// adapted to the sliced scan).
pub(crate) fn sweep_level_slice<S, M>(
    c: &Compiled,
    ctx: &mut Ctx<'_, S, M>,
    flag_words: &[AtomicU64],
    fired_words: &[AtomicU64],
    counters: &mut Counters,
    sns: &[u32],
    word_skip: bool,
) where
    S: StateStore,
    M: MemStore,
{
    let mut flags = SharedBits(flag_words);
    let mut fired = SharedBits(fired_words);
    let mut i = 0;
    while i < sns.len() {
        if word_skip {
            // Group consecutive slice members by flag word: one check
            // covers the whole span, skipping idle spans wholesale.
            let w = (sns[i] >> 6) as usize;
            let mut mask = 0u64;
            let mut j = i;
            while j < sns.len() && (sns[j] >> 6) as usize == w {
                mask |= 1u64 << (sns[j] & 63);
                j += 1;
            }
            counters.aexam_checks += 1;
            let bits = flags.load_word(w) & mask;
            if bits != 0 {
                flags.clear_word(w, bits);
                let mut rem = bits;
                while rem != 0 {
                    let t = rem.trailing_zeros();
                    rem &= rem - 1;
                    counters.aexam_checks += 1;
                    eval_supernode(
                        c,
                        ctx,
                        &mut flags,
                        &mut fired,
                        counters,
                        (w * 64) + t as usize,
                    );
                }
            }
            i = j;
        } else {
            let sn = sns[i];
            i += 1;
            counters.aexam_checks += 1;
            let w = (sn >> 6) as usize;
            let bit = 1u64 << (sn & 63);
            if flags.load_word(w) & bit != 0 {
                flags.clear_word(w, bit);
                eval_supernode(c, ctx, &mut flags, &mut fired, counters, sn as usize);
            }
        }
    }
}

// ------------------------------------------------------------- commit

/// Mutable memory-arena access for the commit phase, abstracting
/// in-place arenas over the shared atomic image of the parallel
/// engines.
pub(crate) trait MemWrite {
    /// Overwrites entry `addr` of memory `mem` with `data(i)` per
    /// word, masked to the memory width; returns whether the stored
    /// content changed. Out-of-range writes are dropped.
    fn write_entry(&mut self, mem: u32, addr: u64, data: &dyn Fn(usize) -> u64) -> bool;
}

impl MemWrite for &mut [MemArena] {
    fn write_entry(&mut self, mem: u32, addr: u64, data: &dyn Fn(usize) -> u64) -> bool {
        let arena = &mut self[mem as usize];
        let width = arena.width as usize;
        let Some(entry) = arena.entry_mut(addr) else {
            return false;
        };
        let mut changed = false;
        for (i, slot_word) in entry.iter_mut().enumerate() {
            let mut v = data(i);
            let top_bits = width - i * 64;
            if top_bits < 64 {
                v &= (1u64 << top_bits) - 1;
            }
            if *slot_word != v {
                *slot_word = v;
                changed = true;
            }
        }
        changed
    }
}

impl MemWrite for &exec::AtomicMems {
    fn write_entry(&mut self, mem: u32, addr: u64, data: &dyn Fn(usize) -> u64) -> bool {
        let arena = &self.arenas[mem as usize];
        if addr >= arena.depth {
            return false;
        }
        let base = addr as usize * arena.words_per_entry;
        let mut changed = false;
        for i in 0..arena.words_per_entry {
            let mut v = data(i);
            let top_bits = arena.width as usize - i * 64;
            if top_bits < 64 {
                v &= (1u64 << top_bits) - 1;
            }
            let cell = &arena.data[base + i];
            if cell.load(Ordering::Relaxed) != v {
                cell.store(v, Ordering::Relaxed);
                changed = true;
            }
        }
        changed
    }
}

/// Applies all enabled write ports in port order. When `dirty` is
/// provided, memories whose content changed are recorded (so the
/// essential commit can activate their read ports).
pub(crate) fn apply_writes<S: StateStore, W: MemWrite>(
    c: &Compiled,
    st: &S,
    mems: &mut W,
    mut dirty: Option<&mut [bool]>,
) {
    for p in &c.write_ports {
        let en_zero = (0..p.en.words as usize).all(|i| st.load(p.en.off as usize + i) == 0);
        if en_zero {
            continue;
        }
        // Address-style read: saturate when high words are set.
        let mut addr = st.load(p.addr.off as usize);
        if (1..p.addr.words as usize).any(|i| st.load(p.addr.off as usize + i) != 0) {
            addr = u64::MAX;
        }
        let data_words = p.data.words as usize;
        let data_off = p.data.off as usize;
        let data = |i: usize| {
            if i < data_words {
                st.load(data_off + i)
            } else {
                0
            }
        };
        let changed = mems.write_entry(p.mem, addr, &data);
        if changed {
            if let Some(d) = dirty.as_deref_mut() {
                d[p.mem as usize] = true;
            }
        }
    }
}

/// Latches every distinct reset signal's assertion into `asserted`.
/// Must run **before** the first register commit of the cycle: a reset
/// signal may itself be a register (the reset-synchronizer pattern),
/// and its state slot is overwritten mid-commit, so reading it live in
/// [`commit_resets`] would observe the *post-edge* value and apply
/// reset one cycle early. `RefInterp` reads all reset signals pre-edge
/// (compute-then-commit); this snapshot pins the same semantics.
pub(crate) fn snapshot_resets<S: StateStore>(c: &Compiled, st: &S, asserted: &mut Vec<bool>) {
    asserted.clear();
    asserted.extend(
        c.reset_groups
            .iter()
            .map(|g| st.load(g.signal.off as usize) != 0),
    );
}

/// Slow-path reset (Listing 6): one check per distinct reset signal;
/// on an asserted signal, re-initialize its registers. `asserted` is
/// the pre-edge snapshot from [`snapshot_resets`]. The essential
/// engines activate readers of registers that actually changed; the
/// full-cycle engines pass `essential = false` and skip activation
/// bookkeeping entirely.
pub(crate) fn commit_resets<S: StateStore, A: ActiveBits>(
    c: &Compiled,
    st: &mut S,
    flags: &mut A,
    counters: &mut Counters,
    essential: bool,
    asserted: &[bool],
) {
    for (gi, g) in c.reset_groups.iter().enumerate() {
        counters.reset_checks += 1;
        if !asserted[gi] {
            continue;
        }
        for &ri in &g.regs {
            let r = &c.reg_infos[ri as usize];
            let init = r.init.expect("reset reg has init");
            let mut changed = false;
            for i in 0..r.cur.words as usize {
                let new = c.consts[init.off as usize + i];
                let off = r.cur.off as usize + i;
                if st.load(off) != new {
                    st.store(off, new);
                    changed = true;
                }
            }
            if essential && changed {
                activate(flags, counters, &c.act_list, r.act, false, true);
            }
        }
    }
}

/// Full-cycle commit: unconditional register copy, resets, every
/// enabled write port (shared by the sequential and levelized-parallel
/// full-cycle drivers).
pub(crate) fn commit_full_cycle<S: StateStore, W: MemWrite>(
    c: &Compiled,
    st: &mut S,
    mems: &mut W,
    counters: &mut Counters,
    reset_snap: &mut Vec<bool>,
) {
    snapshot_resets(c, st, reset_snap);
    for r in &c.reg_infos {
        for i in 0..r.cur.words as usize {
            let v = st.load(r.shadow.off as usize + i);
            st.store(r.cur.off as usize + i, v);
        }
    }
    commit_resets(c, st, &mut NoActivation, counters, false, reset_snap);
    apply_writes(c, st, mems, None);
}

/// Essential commit: registers of fired supernodes commit on change
/// (waking readers next cycle), then slow-path resets, then memory
/// writes with read-port activation. Consumes (clears) the fired set.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_essential<S, W, A, F>(
    c: &Compiled,
    st: &mut S,
    mems: &mut W,
    flags: &mut A,
    fired: &mut F,
    supernode_regs: &[Vec<u32>],
    dirty_mems: &mut [bool],
    counters: &mut Counters,
    reset_snap: &mut Vec<bool>,
) where
    S: StateStore,
    W: MemWrite,
    A: ActiveBits,
    F: ActiveBits,
{
    snapshot_resets(c, st, reset_snap);
    for w in 0..c.num_supernodes.div_ceil(64) {
        let mut bits = fired.load_word(w);
        if bits == 0 {
            continue;
        }
        fired.clear_word(w, bits);
        while bits != 0 {
            let t = bits.trailing_zeros();
            bits &= bits - 1;
            let sn = (w * 64) + t as usize;
            for &ri in &supernode_regs[sn] {
                let r = &c.reg_infos[ri as usize];
                let mut changed = false;
                for i in 0..r.cur.words as usize {
                    let new = st.load(r.shadow.off as usize + i);
                    let off = r.cur.off as usize + i;
                    if st.load(off) != new {
                        st.store(off, new);
                        changed = true;
                    }
                }
                if changed {
                    counters.value_changes += 1;
                    activate(flags, counters, &c.act_list, r.act, false, true);
                }
            }
        }
    }
    commit_resets(c, st, flags, counters, true, reset_snap);
    apply_writes(c, st, mems, Some(dirty_mems));
    for (m, dirty) in dirty_mems.iter_mut().enumerate() {
        if !*dirty {
            continue;
        }
        *dirty = false;
        for &sn in &c.mem_read_act[m] {
            flags.set_bit(sn);
        }
    }
}

// ------------------------------------------------------------ barrier

/// A sense-reversing spin barrier for the level-synchronous parallel
/// engines. `std::sync::Barrier` takes a mutex + condvar per
/// rendezvous; with one barrier per level per cycle that cost
/// dominates low-activity cycles, so the engines spin instead.
pub(crate) struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub(crate) fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `total` threads have called `wait` for this
    /// generation. The AcqRel rendezvous publishes every write made
    /// before the barrier to every thread after it.
    ///
    /// Spins briefly, then yields: pure spinning burns whole scheduler
    /// timeslices when threads outnumber cores, turning each barrier
    /// from nanoseconds into milliseconds.
    pub(crate) fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < 128 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_bits_roundtrip() {
        let mut words = vec![0u64; 2];
        let mut bits: &mut [u64] = &mut words;
        bits.set_bit(5);
        bits.set_bit(70);
        assert_eq!(bits.load_word(0), 1 << 5);
        assert_eq!(bits.load_word(1), 1 << 6);
        bits.clear_word(0, 1 << 5);
        assert_eq!(bits.load_word(0), 0);
    }

    #[test]
    fn shared_bits_roundtrip() {
        let cells: Vec<AtomicU64> = (0..2).map(|_| AtomicU64::new(0)).collect();
        let mut bits = SharedBits(&cells);
        bits.set_bit(65);
        assert_eq!(bits.load_word(1), 2);
        bits.clear_word(1, 2);
        assert_eq!(bits.load_word(1), 0);
    }

    #[test]
    fn spin_barrier_synchronizes() {
        let barrier = SpinBarrier::new(4);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    barrier.wait();
                    assert_eq!(hits.load(Ordering::Relaxed), 4);
                    barrier.wait();
                });
            }
        });
    }
}
