//! The [`Simulator`]: compiled-design execution engines.
//!
//! Each engine family is a *thin driver* here — the actual
//! eval/commit/activation machinery lives in [`crate::executor`] and is
//! shared between the sequential and parallel paths. The drivers only
//! decide *what* to sweep (all tasks, activated supernodes, level
//! slices) and *where* the state lives (plain words or shared atomics).

use crate::compile::{self, Compiled, TaskKind};
use crate::counters::Counters;
use crate::exec::{AtomicMems, Ctx};
use crate::executor::{self, ActiveBits, NoActivation, SharedBits, SpinBarrier};
use crate::session::{GsimError, MemoryInfo, Session, SessionFrame, SignalInfo, SnapshotId};
use crate::storage::{AtomicStateRef, MemArena, StateStore};
use crate::threaded::{self, ThreadedProg};
use crate::{CompileError, EngineKind, SimOptions};
use gsim_graph::Graph;
use gsim_value::Value;
use gsim_wave::{Tracer, WaveSignal, WaveSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A resolved top-level input, for allocation-free per-cycle stimulus
/// through [`Simulator::run_driven`].
#[derive(Debug, Clone, Copy)]
pub struct InputHandle(u32);

/// One cycle's worth of input pokes for [`Simulator::run_driven`].
#[derive(Debug, Default)]
pub struct InputFrame {
    pokes: Vec<(u32, u64)>,
}

impl InputFrame {
    /// Schedules `v` to be driven onto `input` this cycle (masked to
    /// the input's width).
    pub fn set(&mut self, input: InputHandle, v: u64) {
        self.pokes.push((input.0, v));
    }
}

/// Applies one input frame: write each poked value and activate the
/// input's reader supernodes on change — [`Simulator::poke`] expressed
/// over the generic stores, so the parallel engines can drive stimulus
/// from inside their thread scope.
fn apply_frame<S: StateStore, A: ActiveBits>(
    c: &Compiled,
    st: &mut S,
    flags: &mut A,
    frame: &InputFrame,
) {
    for &(id, v) in &frame.pokes {
        let slot = c.node_slot[id as usize];
        if slot.words == 0 {
            continue;
        }
        let masked = if slot.width >= 64 {
            v
        } else {
            v & ((1u64 << slot.width) - 1)
        };
        let mut changed = false;
        if st.load(slot.off as usize) != masked {
            st.store(slot.off as usize, masked);
            changed = true;
        }
        for i in 1..slot.words as usize {
            let off = slot.off as usize + i;
            if st.load(off) != 0 {
                st.store(off, 0);
                changed = true;
            }
        }
        if changed {
            if let Some(&(lo, hi)) = c.input_act.get(&id) {
                for &sn in &c.act_list[lo as usize..hi as usize] {
                    flags.set_bit(sn);
                }
            }
        }
    }
}

/// A compiled, runnable simulation.
///
/// See the crate docs for the engine families. All engines share this
/// interface; behaviour is bit-identical across engines (pinned by
/// differential tests against the reference interpreter).
pub struct Simulator {
    /// The compiled design, read-only at runtime and shared (`Arc`)
    /// between a simulator and its [`Simulator::fork`] children, so a
    /// fork costs state copies only — never a recompile.
    c: Arc<Compiled>,
    opts: SimOptions,
    state: Vec<u64>,
    scratch: Vec<u64>,
    mems: Vec<MemArena>,
    /// Supernode active bits (essential engines).
    flags: Vec<u64>,
    /// Supernodes evaluated this cycle, as a bitset (register commit).
    fired: Vec<u64>,
    /// Register-info indices per supernode.
    supernode_regs: Vec<Vec<u32>>,
    dirty_mems: Vec<bool>,
    /// Pre-edge reset-signal snapshot scratch (one flag per group).
    reset_snap: Vec<bool>,
    counters: Counters,
    cycle: u64,
    /// The lowered threaded-code program ([`EngineKind::Threaded`] with
    /// `threaded_dispatch` on). When present, `state` is the combined
    /// `[state | scratch | consts]` arena the records index into; the
    /// persistent state occupies the prefix at unchanged offsets, so
    /// every poke/peek/commit/snapshot path works untouched. Shared
    /// (`Arc`) with forks, like the compiled design.
    threaded: Option<Arc<ThreadedProg>>,
    /// Saved states for [`Session::snapshot`] / [`Session::restore`].
    snapshots: Vec<SimSnapshot>,
    /// Name → node id for every top-level input, prebuilt at compile
    /// time so the trait's by-name frame stepping pays no per-call
    /// map construction.
    input_ids: std::collections::HashMap<String, u32>,
    /// Active waveform capture ([`Simulator::trace_start`]). `None`
    /// when tracing is off — the *only* cost the untraced hot path
    /// pays is this option check once per `run_driven` call, not per
    /// store or per cycle.
    trace: Option<SimTrace>,
}

/// One active capture: the traced signals' state slots plus the
/// change-detecting [`Tracer`] feeding the user's sink.
struct SimTrace {
    /// `(state offset, words)` per traced signal, aligned with the
    /// signal list the tracer was built from.
    slots: Vec<(usize, usize)>,
    tracer: Tracer,
}

/// One saved simulation state: everything a later cycle can observe.
#[derive(Debug, Clone)]
struct SimSnapshot {
    state: Vec<u64>,
    mems: Vec<MemArena>,
    flags: Vec<u64>,
    fired: Vec<u64>,
    dirty_mems: Vec<bool>,
    counters: Counters,
    cycle: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("engine", &self.opts.engine)
            .field("supernodes", &self.c.num_supernodes)
            .field("state_words", &self.c.state_words)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Simulator {
    /// Compiles `graph` for execution under `opts`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for invalid graphs or a zero thread
    /// count.
    pub fn compile(graph: &Graph, opts: &SimOptions) -> Result<Simulator, CompileError> {
        let mut c = compile::compile(graph, opts)?;
        let mems = std::mem::take(&mut c.mems);
        let threaded = (opts.engine == EngineKind::Threaded && opts.threaded_dispatch)
            .then(|| Arc::new(threaded::lower(&c)));
        let state = match &threaded {
            // Combined arena: persistent state in the prefix (same
            // offsets as the plain engines), scratch and the const
            // pool behind it.
            Some(p) => {
                let mut arena = vec![0u64; p.arena_words];
                arena[p.const_base as usize..].copy_from_slice(&c.consts);
                arena
            }
            None => vec![0u64; c.state_words],
        };
        let scratch = vec![0u64; c.scratch_words.max(1)];
        let flag_words = c.num_supernodes.div_ceil(64);
        let mut flags = vec![0u64; flag_words.max(1)];
        // Everything starts active: the first cycle evaluates the whole
        // design, establishing the baseline values.
        for (i, w) in flags.iter_mut().enumerate() {
            let base = i * 64;
            let valid = c.num_supernodes.saturating_sub(base).min(64);
            *w = if valid == 64 {
                u64::MAX
            } else {
                (1u64 << valid) - 1
            };
        }
        let fired = vec![0u64; flag_words.max(1)];
        let mut supernode_regs = vec![Vec::new(); c.supernode_tasks.len()];
        for (sn, &(lo, hi)) in c.supernode_tasks.iter().enumerate() {
            for task in &c.tasks[lo as usize..hi as usize] {
                if matches!(task.kind, TaskKind::Reg) {
                    if let Some(ri) = c.reg_infos.iter().position(|r| r.node == task.node) {
                        supernode_regs[sn].push(ri as u32);
                    }
                }
            }
        }
        let dirty_mems = vec![false; mems.len()];
        let input_ids = c
            .names
            .iter()
            .filter(|&(_, &id)| c.node_meta[id as usize].2)
            .map(|(name, &id)| (name.clone(), id))
            .collect();
        Ok(Simulator {
            c: Arc::new(c),
            opts: *opts,
            state,
            scratch,
            mems,
            flags,
            fired,
            supernode_regs,
            dirty_mems,
            reset_snap: Vec::new(),
            counters: Counters::default(),
            cycle: 0,
            threaded,
            snapshots: Vec::new(),
            input_ids,
            trace: None,
        })
    }

    /// Completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runtime cost counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resets the cost counters (not the simulation state).
    pub fn reset_counters(&mut self) {
        self.counters = Counters::default();
    }

    /// Number of supernodes in the compiled schedule.
    pub fn num_supernodes(&self) -> usize {
        self.c.num_supernodes
    }

    /// Number of levels in the supernode dependency DAG (barriers per
    /// cycle of the parallel essential engine; 0 for other engines).
    pub fn num_supernode_levels(&self) -> usize {
        self.c.supernode_levels.len()
    }

    /// Number of logical bytecode instructions in the compiled design
    /// (a code size proxy for Table IV; fused pairs count once).
    pub fn num_instrs(&self) -> usize {
        self.c.tasks.iter().map(|t| t.n_instrs as usize).sum()
    }

    /// Number of 16-byte encoded units in the execution image's code
    /// arena (multi-operand instructions take two).
    pub fn image_units(&self) -> usize {
        self.c.image.code.len()
    }

    /// What the superinstruction fusion pass collapsed at compile time
    /// (all zero when fusion is disabled).
    pub fn fusion_stats(&self) -> compile::FusionStats {
        self.c.fusion
    }

    /// Bytes of mutable signal state (Table IV's "data size"; memories
    /// excluded, as in the paper).
    pub fn state_bytes(&self) -> usize {
        self.c.state_words * 8
    }

    /// Time spent building the supernode partition.
    pub fn partition_time(&self) -> std::time::Duration {
        self.c.partition_time
    }

    fn node_by_name(&self, name: &str) -> Option<u32> {
        self.c.names.get(name).copied()
    }

    /// The compiled design (crate-internal: lowering tests).
    #[cfg(test)]
    pub(crate) fn compiled(&self) -> &Compiled {
        &self.c
    }

    /// The persistent state prefix (crate-internal: lowering tests).
    #[cfg(test)]
    pub(crate) fn state_prefix(&self) -> &[u64] {
        &self.state[..self.c.state_words]
    }

    /// Pending activation flags (crate-internal: lowering tests).
    #[cfg(test)]
    pub(crate) fn flag_words(&self) -> &[u64] {
        &self.flags
    }

    /// Sets a top-level input by name.
    ///
    /// # Errors
    ///
    /// Returns [`GsimError::UnknownSignal`] or [`GsimError::NotAnInput`].
    pub fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
        let id = self
            .node_by_name(name)
            .ok_or_else(|| GsimError::UnknownSignal(name.to_string()))?;
        let (_, _, is_input) = self.c.node_meta[id as usize];
        if !is_input {
            return Err(GsimError::NotAnInput(name.to_string()));
        }
        let slot = self.c.node_slot[id as usize];
        let fitted = v.zext_or_trunc(slot.width);
        let mut changed = false;
        for (i, &w) in fitted.words().iter().enumerate() {
            let off = slot.off as usize + i;
            if self.state[off] != w {
                self.state[off] = w;
                changed = true;
            }
        }
        if changed {
            if let Some(&(lo, hi)) = self.c.input_act.get(&id) {
                for &sn in &self.c.act_list[lo as usize..hi as usize] {
                    self.flags[(sn >> 6) as usize] |= 1u64 << (sn & 63);
                }
            }
        }
        Ok(())
    }

    /// Sets a top-level input by name from a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`GsimError::UnknownSignal`] or [`GsimError::NotAnInput`].
    pub fn poke_u64(&mut self, name: &str, x: u64) -> Result<(), GsimError> {
        let id = self
            .node_by_name(name)
            .ok_or_else(|| GsimError::UnknownSignal(name.to_string()))?;
        let w = self.c.node_meta[id as usize].0;
        self.poke(name, Value::from_u64(x, w))
    }

    /// Reads any named node's current value.
    pub fn peek(&self, name: &str) -> Option<Value> {
        let id = self.node_by_name(name)?;
        let slot = self.c.node_slot[id as usize];
        let mut ws = vec![0u64; slot.words as usize];
        for (i, w) in ws.iter_mut().enumerate() {
            *w = self.state[slot.off as usize + i];
        }
        Some(Value::from_words(ws, slot.width))
    }

    /// Reads a named node as `u64` (`None` if missing or too wide).
    pub fn peek_u64(&self, name: &str) -> Option<u64> {
        self.peek(name).and_then(|v| v.to_u64())
    }

    /// Loads a memory image (entry `i` at address `i`).
    ///
    /// # Errors
    ///
    /// Returns [`GsimError::UnknownMemory`] or
    /// [`GsimError::MemImageTooLarge`].
    pub fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError> {
        let mem = self
            .mems
            .iter_mut()
            .find(|m| m.name == name)
            .ok_or_else(|| GsimError::UnknownMemory(name.to_string()))?;
        mem.load_image(image)
    }

    /// Reads one memory entry.
    pub fn read_mem(&self, name: &str, addr: u64) -> Option<Value> {
        let mem = self.mems.iter().find(|m| m.name == name)?;
        mem.entry(addr)
            .map(|ws| Value::from_words(ws.to_vec(), mem.width))
    }

    /// Advances one clock cycle.
    pub fn step(&mut self) {
        self.run(1);
    }

    /// Advances `n` clock cycles.
    pub fn run(&mut self, n: u64) {
        self.run_driven(n, |_, _| {});
    }

    /// Resolves a top-level input to a handle for
    /// [`Simulator::run_driven`].
    pub fn input_handle(&self, name: &str) -> Option<InputHandle> {
        let id = self.node_by_name(name)?;
        let (_, _, is_input) = self.c.node_meta[id as usize];
        is_input.then_some(InputHandle(id))
    }

    /// Advances `n` clock cycles, calling `drive` with the cycle number
    /// before each one to fill an [`InputFrame`] of pokes.
    ///
    /// This is the fast path for per-cycle stimulus: the multithreaded
    /// engines keep their worker team alive for the whole run and apply
    /// each frame between cycle barriers, where a `poke`/`run(1)` loop
    /// would tear the team down and respawn it every cycle.
    pub fn run_driven<F>(&mut self, n: u64, mut drive: F)
    where
        F: FnMut(u64, &mut InputFrame),
    {
        if self.trace.is_none() {
            // Untraced hot path: one option check per call, then the
            // engines run exactly the pre-tracing code.
            return self.run_driven_untraced(n, &mut drive);
        }
        // Traced: capture after every cycle. Cycle-at-a-time stepping
        // also makes the multithreaded engines observable per cycle
        // (they only publish their atomic images at scope exit).
        for _ in 0..n {
            self.run_driven_untraced(1, &mut drive);
            self.capture_trace();
        }
    }

    fn run_driven_untraced<F>(&mut self, n: u64, drive: &mut F)
    where
        F: FnMut(u64, &mut InputFrame),
    {
        if n == 0 {
            // No cycle runs, so no frame is driven — on any engine.
            return;
        }
        match self.opts.engine {
            EngineKind::FullCycle => {
                let mut frame = InputFrame::default();
                for _ in 0..n {
                    frame.pokes.clear();
                    drive(self.cycle, &mut frame);
                    let mut st: &mut [u64] = &mut self.state;
                    apply_frame(&self.c, &mut st, &mut NoActivation, &frame);
                    self.step_full();
                }
            }
            EngineKind::Essential => {
                let mut frame = InputFrame::default();
                for _ in 0..n {
                    frame.pokes.clear();
                    drive(self.cycle, &mut frame);
                    let mut st: &mut [u64] = &mut self.state;
                    let mut flags: &mut [u64] = &mut self.flags;
                    apply_frame(&self.c, &mut st, &mut flags, &frame);
                    self.step_essential();
                }
            }
            EngineKind::Threaded => {
                let mut frame = InputFrame::default();
                for _ in 0..n {
                    frame.pokes.clear();
                    drive(self.cycle, &mut frame);
                    let mut st: &mut [u64] = &mut self.state;
                    let mut flags: &mut [u64] = &mut self.flags;
                    apply_frame(&self.c, &mut st, &mut flags, &frame);
                    self.step_threaded();
                }
            }
            EngineKind::FullCycleMt { threads } => self.run_full_mt(n, threads.max(1), drive),
            EngineKind::EssentialMt { threads } => self.run_essential_mt(n, threads.max(1), drive),
        }
    }

    /// Starts change-driven waveform capture into `sink` (see
    /// [`Session::trace_start`] for the full contract). The traced
    /// set is the portable signal surface ([`Session::signals`]) or
    /// the validated subset `signals`, in request order; the header
    /// and baseline snapshot are emitted immediately at the current
    /// cycle.
    ///
    /// # Errors
    ///
    /// [`GsimError::UnknownSignal`] for a subset name outside the
    /// portable surface; [`GsimError::Config`] if a trace is already
    /// active.
    pub fn trace_start(
        &mut self,
        signals: Option<&[String]>,
        sink: Box<dyn WaveSink>,
    ) -> Result<(), GsimError> {
        if self.trace.is_some() {
            return Err(GsimError::Config(
                "a trace is already active on this session".into(),
            ));
        }
        let selected: Vec<(String, u32)> = match signals {
            None => self.c.io_signals.clone(),
            Some(names) => {
                let avail: std::collections::HashMap<&str, u32> = self
                    .c
                    .io_signals
                    .iter()
                    .map(|(n, w)| (n.as_str(), *w))
                    .collect();
                let mut sel = Vec::with_capacity(names.len());
                for n in names {
                    let &w = avail
                        .get(n.as_str())
                        .ok_or_else(|| GsimError::UnknownSignal(n.clone()))?;
                    sel.push((n.clone(), w));
                }
                sel
            }
        };
        let wave_sigs: Vec<WaveSignal> = selected
            .iter()
            .map(|(n, w)| WaveSignal::new(n, *w))
            .collect();
        let slots: Vec<(usize, usize)> = selected
            .iter()
            .map(|(n, _)| {
                let id = self.c.names[n.as_str()];
                let slot = self.c.node_slot[id as usize];
                (slot.off as usize, slot.words as usize)
            })
            .collect();
        let mut tracer = Tracer::new("top", &wave_sigs, sink);
        let state = &self.state;
        tracer.begin(self.cycle, &mut |i, buf| {
            let (off, words) = slots[i];
            buf.extend_from_slice(&state[off..off + words]);
        });
        self.trace = Some(SimTrace { slots, tracer });
        Ok(())
    }

    /// Stops waveform capture, finishing the sink. See
    /// [`Session::trace_stop`].
    ///
    /// # Errors
    ///
    /// [`GsimError::Config`] if no trace is active; [`GsimError::Io`]
    /// for a latched or final sink failure.
    pub fn trace_stop(&mut self) -> Result<(), GsimError> {
        let tr = self
            .trace
            .take()
            .ok_or_else(|| GsimError::Config("no trace is active on this session".into()))?;
        tr.tracer.finish().map_err(|e| GsimError::Io(e.to_string()))
    }

    /// Post-cycle capture: compares every traced signal against the
    /// tracer's shadow and emits change records stamped with the
    /// just-completed cycle. The trace is taken out of `self` for the
    /// duration so the read closure can borrow `self.state`.
    fn capture_trace(&mut self) {
        let Some(mut tr) = self.trace.take() else {
            return;
        };
        {
            let SimTrace { slots, tracer } = &mut tr;
            let state = &self.state;
            tracer.capture(self.cycle, &mut |i, buf| {
                let (off, words) = slots[i];
                buf.extend_from_slice(&state[off..off + words]);
            });
        }
        self.trace = Some(tr);
    }

    /// Time the threaded-code lowering pass took at compile time
    /// (zero for other engines and under the `--no-threaded` ablation).
    pub fn lowering_time(&self) -> std::time::Duration {
        self.threaded
            .as_ref()
            .map_or(std::time::Duration::ZERO, |p| p.lowering_time)
    }

    /// Saves the complete simulation state (signals, memories, active
    /// bits, cycle count, counters) and returns a handle for
    /// [`Simulator::restore_snapshot`].
    ///
    /// Memory arenas are saved copy-on-write: the snapshot *shares*
    /// each arena's word storage with the live simulation, and the
    /// words are copied only when the live side (or a restore) first
    /// writes to a shared arena. A design whose memories are
    /// read-only ROM images therefore snapshots in O(signal state),
    /// not O(signal state + memories) — see
    /// [`Simulator::snapshot_mem_bytes`] for the measured difference.
    pub fn take_snapshot(&mut self) -> SnapshotId {
        self.snapshots.push(SimSnapshot {
            state: self.state.clone(),
            mems: self.mems.clone(), // CoW: shares arena storage
            flags: self.flags.clone(),
            fired: self.fired.clone(),
            dirty_mems: self.dirty_mems.clone(),
            counters: self.counters,
            cycle: self.cycle,
        });
        SnapshotId::from_raw(self.snapshots.len() as u64 - 1)
    }

    /// Copy-on-write accounting for the snapshot stack: bytes of
    /// memory-arena storage the snapshots actually own privately
    /// versus the bytes an eager deep copy per snapshot would have
    /// duplicated. An arena still sharing its words with the live
    /// simulation costs nothing until one side writes.
    pub fn snapshot_mem_bytes(&self) -> (usize, usize) {
        let mut owned = 0;
        let mut deep = 0;
        for snap in &self.snapshots {
            for (saved, live) in snap.mems.iter().zip(&self.mems) {
                deep += saved.storage_bytes();
                if !saved.shares_storage_with(live) {
                    owned += saved.storage_bytes();
                }
            }
        }
        (owned, deep)
    }

    /// Forks this simulation: a new, independent [`Simulator`] whose
    /// observable state (signals, memories, cycle count, counters)
    /// equals this one's right now. The compiled design and lowered
    /// threaded-code program are shared (`Arc`), and memory arenas
    /// are shared copy-on-write, so a fork costs one signal-state
    /// copy — no recompilation, no memory duplication until a branch
    /// writes. Snapshot handles are session-local and do not carry
    /// over to the fork.
    pub fn fork(&self) -> Simulator {
        Simulator {
            c: Arc::clone(&self.c),
            opts: self.opts,
            state: self.state.clone(),
            scratch: self.scratch.clone(),
            mems: self.mems.clone(), // CoW: shares arena storage
            flags: self.flags.clone(),
            fired: self.fired.clone(),
            supernode_regs: self.supernode_regs.clone(),
            dirty_mems: self.dirty_mems.clone(),
            reset_snap: self.reset_snap.clone(),
            counters: self.counters,
            cycle: self.cycle,
            threaded: self.threaded.clone(),
            snapshots: Vec::new(),
            input_ids: self.input_ids.clone(),
            // Traces are session-local: the fork starts untraced (the
            // Explorer attaches its own per-branch sink).
            trace: None,
        }
    }

    /// Rolls the simulation back to a saved state. Replay after a
    /// restore is bit-identical to the original run under the same
    /// stimulus (pinned by the snapshot round-trip tests).
    ///
    /// # Errors
    ///
    /// Returns [`GsimError::UnknownSnapshot`] for ids this simulator
    /// never issued.
    pub fn restore_snapshot(&mut self, id: SnapshotId) -> Result<(), GsimError> {
        let snap = self
            .snapshots
            .get(id.raw() as usize)
            .ok_or(GsimError::UnknownSnapshot(id.raw()))?
            .clone();
        self.state = snap.state;
        self.mems = snap.mems;
        self.flags = snap.flags;
        self.fired = snap.fired;
        self.dirty_mems = snap.dirty_mems;
        self.counters = snap.counters;
        self.cycle = snap.cycle;
        Ok(())
    }

    // ----- sequential full-cycle (Listing 1) -----

    fn step_full(&mut self) {
        {
            let mut ctx = Ctx {
                state: &mut self.state[..],
                scratch: &mut self.scratch[..],
                consts: &self.c.consts,
                mems: &self.mems[..],
            };
            executor::run_task_range(
                &mut ctx,
                &self.c,
                0,
                self.c.tasks.len() as u32,
                &mut self.counters,
            );
        }
        let mut st: &mut [u64] = &mut self.state;
        let mut mems: &mut [MemArena] = &mut self.mems;
        executor::commit_full_cycle(
            &self.c,
            &mut st,
            &mut mems,
            &mut self.counters,
            &mut self.reset_snap,
        );
        self.cycle += 1;
        self.counters.cycles += 1;
    }

    // ----- essential-signal engine (Listings 2-4) -----

    fn step_essential(&mut self) {
        {
            let mut ctx = Ctx {
                state: &mut self.state[..],
                scratch: &mut self.scratch[..],
                consts: &self.c.consts,
                mems: &self.mems[..],
            };
            let mut flags: &mut [u64] = &mut self.flags;
            let mut fired: &mut [u64] = &mut self.fired;
            executor::sweep_essential(
                &self.c,
                &mut ctx,
                &mut flags,
                &mut fired,
                &mut self.counters,
                self.opts.check_multiple_bits,
            );
        }
        let mut st: &mut [u64] = &mut self.state;
        let mut mems: &mut [MemArena] = &mut self.mems;
        let mut flags: &mut [u64] = &mut self.flags;
        let mut fired: &mut [u64] = &mut self.fired;
        executor::commit_essential(
            &self.c,
            &mut st,
            &mut mems,
            &mut flags,
            &mut fired,
            &self.supernode_regs,
            &mut self.dirty_mems,
            &mut self.counters,
            &mut self.reset_snap,
        );
        self.cycle += 1;
        self.counters.cycles += 1;
    }

    // ----- threaded-code essential-signal -----

    fn step_threaded(&mut self) {
        let Some(prog) = &self.threaded else {
            // `--no-threaded` ablation: identical semantics through
            // the plain essential interpreter.
            self.step_essential();
            return;
        };
        {
            let mut ctx = threaded::TCtx {
                mem: &mut self.state[..],
                mems: &self.mems[..],
                wide: &self.c.image.wide,
                recs: &prog.records,
                state_words: prog.state_words,
                const_base: prog.const_base,
                changed: false,
            };
            let flags: &mut [u64] = &mut self.flags;
            let fired: &mut [u64] = &mut self.fired;
            threaded::sweep(
                &self.c,
                prog,
                &mut ctx,
                flags,
                fired,
                &mut self.counters,
                self.opts.check_multiple_bits,
            );
        }
        // The commit phase is the essential engine's, verbatim: the
        // state arena's prefix is the plain state vector it expects.
        let mut st: &mut [u64] = &mut self.state;
        let mut mems: &mut [MemArena] = &mut self.mems;
        let mut flags: &mut [u64] = &mut self.flags;
        let mut fired: &mut [u64] = &mut self.fired;
        executor::commit_essential(
            &self.c,
            &mut st,
            &mut mems,
            &mut flags,
            &mut fired,
            &self.supernode_regs,
            &mut self.dirty_mems,
            &mut self.counters,
            &mut self.reset_snap,
        );
        self.cycle += 1;
        self.counters.cycles += 1;
    }

    // ----- levelized multithreaded full-cycle -----

    fn run_full_mt<F>(&mut self, n: u64, threads: usize, drive: &mut F)
    where
        F: FnMut(u64, &mut InputFrame),
    {
        // Copy state and memories into shared atomics for the run.
        let state: Vec<AtomicU64> = self.state.iter().map(|&w| AtomicU64::new(w)).collect();
        let mems = AtomicMems::snapshot(&self.mems);
        // Chunk each level across threads.
        let chunks: Vec<Vec<(u32, u32)>> = self
            .c
            .level_tasks
            .iter()
            .map(|&(lo, hi)| {
                let len = (hi - lo) as usize;
                let per = len.div_ceil(threads).max(1);
                (0..threads)
                    .map(|t| {
                        let s = (lo as usize + t * per).min(hi as usize);
                        let e = (s + per).min(hi as usize);
                        (s as u32, e as u32)
                    })
                    .collect()
            })
            .collect();
        let barrier = SpinBarrier::new(threads);
        let c = &self.c;
        let base_cycle = self.cycle;
        // The first cycle's stimulus lands before the team starts.
        let mut frame = InputFrame::default();
        drive(base_cycle, &mut frame);
        apply_frame(
            c,
            &mut AtomicStateRef(&state[..]),
            &mut NoActivation,
            &frame,
        );
        // One cycle's level sweep for worker `t`: the single shared
        // body both worker roles run (barrier per level).
        let sweep_cycle = |t: usize, scratch: &mut [u64], counters: &mut Counters| {
            for level in &chunks {
                let (lo, hi) = level[t];
                let mut ctx = Ctx {
                    state: AtomicStateRef(&state[..]),
                    scratch: &mut scratch[..],
                    consts: &c.consts,
                    mems: &mems,
                };
                executor::run_task_range(&mut ctx, c, lo, hi, counters);
                barrier.wait();
            }
        };
        // The calling thread is worker 0: it sweeps its slices, runs
        // the commit phase, and drives the next cycle's stimulus, all
        // inside the scope — no thread is spawned per `run` call for
        // the single-worker case, and spawns amortize over all `n`
        // cycles otherwise.
        let mut t0_counters = Counters::default();
        let per_thread: Vec<Counters> = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..threads)
                .map(|t| {
                    let (sweep_cycle, barrier) = (&sweep_cycle, &barrier);
                    scope.spawn(move || {
                        let mut counters = Counters::default();
                        let mut scratch = vec![0u64; c.scratch_words.max(1)];
                        for _ in 0..n {
                            sweep_cycle(t, &mut scratch, &mut counters);
                            barrier.wait(); // commit happens on worker 0
                        }
                        counters
                    })
                })
                .collect();
            {
                let counters = &mut t0_counters;
                let mut scratch = vec![0u64; c.scratch_words.max(1)];
                let mut reset_snap = Vec::new();
                for i in 0..n {
                    sweep_cycle(0, &mut scratch, counters);
                    let mut st = AtomicStateRef(&state[..]);
                    let mut mw: &AtomicMems = &mems;
                    executor::commit_full_cycle(c, &mut st, &mut mw, counters, &mut reset_snap);
                    if i + 1 < n {
                        frame.pokes.clear();
                        drive(base_cycle + i + 1, &mut frame);
                        apply_frame(c, &mut st, &mut NoActivation, &frame);
                    }
                    barrier.wait();
                }
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        // Copy results back and merge the per-thread counters (their
        // sum is deterministic for a fixed thread count).
        for (i, w) in self.state.iter_mut().enumerate() {
            *w = state[i].load(Ordering::Relaxed);
        }
        mems.copy_back(&mut self.mems);
        self.counters.merge(&t0_counters);
        for pc in &per_thread {
            self.counters.merge(pc);
        }
        self.counters.cycles += n;
        self.cycle += n;
    }

    // ----- level-parallel essential-signal -----

    fn run_essential_mt<F>(&mut self, n: u64, threads: usize, drive: &mut F)
    where
        F: FnMut(u64, &mut InputFrame),
    {
        if threads == 1 {
            // One worker: the level barriers and atomic images buy
            // nothing, so delegate to the sequential essential sweep —
            // same eval/commit machinery, identical results and
            // semantic work counters (only the examination strategy
            // differs).
            let mut frame = InputFrame::default();
            for _ in 0..n {
                frame.pokes.clear();
                drive(self.cycle, &mut frame);
                let mut st: &mut [u64] = &mut self.state;
                let mut flags: &mut [u64] = &mut self.flags;
                apply_frame(&self.c, &mut st, &mut flags, &frame);
                self.step_essential();
            }
            return;
        }
        // Shared atomic images of the state, active bits, fired set and
        // memories for the run.
        let state: Vec<AtomicU64> = self.state.iter().map(|&w| AtomicU64::new(w)).collect();
        let flags: Vec<AtomicU64> = self.flags.iter().map(|&w| AtomicU64::new(w)).collect();
        let fired: Vec<AtomicU64> = self.fired.iter().map(|&w| AtomicU64::new(w)).collect();
        let mems = AtomicMems::snapshot(&self.mems);
        let barrier = SpinBarrier::new(threads);
        let c = &self.c;
        let supernode_regs = &self.supernode_regs;
        let word_skip = self.opts.check_multiple_bits;
        let base_cycle = self.cycle;
        // The first cycle's stimulus lands before the team starts.
        let mut frame = InputFrame::default();
        drive(base_cycle, &mut frame);
        apply_frame(
            c,
            &mut AtomicStateRef(&state[..]),
            &mut SharedBits(&flags),
            &frame,
        );
        // One cycle's level sweep for worker `t`: the single shared
        // body both worker roles run. `t`'s static slice of each level
        // is claimed with word scans; one barrier per level.
        let sweep_cycle = |t: usize, scratch: &mut [u64], counters: &mut Counters| {
            for level in &c.supernode_levels {
                let per = level.len().div_ceil(threads).max(1);
                let s = (t * per).min(level.len());
                let e = (s + per).min(level.len());
                if s < e {
                    let mut ctx = Ctx {
                        state: AtomicStateRef(&state[..]),
                        scratch: &mut scratch[..],
                        consts: &c.consts,
                        mems: &mems,
                    };
                    executor::sweep_level_slice(
                        c,
                        &mut ctx,
                        &flags,
                        &fired,
                        counters,
                        &level[s..e],
                        word_skip,
                    );
                }
                barrier.wait();
            }
        };
        // As in `run_full_mt`, the calling thread is worker 0 and also
        // runs commit + next-cycle stimulus between the cycle barriers.
        let mut t0_counters = Counters::default();
        let per_thread: Vec<Counters> = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..threads)
                .map(|t| {
                    let (sweep_cycle, barrier) = (&sweep_cycle, &barrier);
                    scope.spawn(move || {
                        let mut counters = Counters::default();
                        let mut scratch = vec![0u64; c.scratch_words.max(1)];
                        for _ in 0..n {
                            sweep_cycle(t, &mut scratch, &mut counters);
                            barrier.wait(); // commit happens on worker 0
                        }
                        counters
                    })
                })
                .collect();
            {
                let counters = &mut t0_counters;
                let mut scratch = vec![0u64; c.scratch_words.max(1)];
                let mut dirty = vec![false; mems.arenas.len()];
                let mut reset_snap = Vec::new();
                for i in 0..n {
                    sweep_cycle(0, &mut scratch, counters);
                    let mut st = AtomicStateRef(&state[..]);
                    let mut mw: &AtomicMems = &mems;
                    executor::commit_essential(
                        c,
                        &mut st,
                        &mut mw,
                        &mut SharedBits(&flags),
                        &mut SharedBits(&fired),
                        supernode_regs,
                        &mut dirty,
                        counters,
                        &mut reset_snap,
                    );
                    if i + 1 < n {
                        frame.pokes.clear();
                        drive(base_cycle + i + 1, &mut frame);
                        apply_frame(c, &mut st, &mut SharedBits(&flags), &frame);
                    }
                    barrier.wait();
                }
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        // Copy the images back (the flags keep commit-time activations
        // for the next cycle) and merge the per-thread counters.
        for (i, w) in self.state.iter_mut().enumerate() {
            *w = state[i].load(Ordering::Relaxed);
        }
        for (i, w) in self.flags.iter_mut().enumerate() {
            *w = flags[i].load(Ordering::Relaxed);
        }
        for (i, w) in self.fired.iter_mut().enumerate() {
            *w = fired[i].load(Ordering::Relaxed);
        }
        mems.copy_back(&mut self.mems);
        self.counters.merge(&t0_counters);
        for pc in &per_thread {
            self.counters.merge(pc);
        }
        self.counters.cycles += n;
        self.cycle += n;
    }
}

/// The interpreter backend's [`Session`]: every engine family behind
/// one object-safe surface. By-name frame stimulus resolves through a
/// prebuilt input map, so [`Session::run_driven`] keeps the engines'
/// fast path (the multithreaded engines' worker teams stay alive for
/// the whole run).
impl Session for Simulator {
    fn backend(&self) -> &'static str {
        match self.opts.engine {
            EngineKind::FullCycle => "interp/full-cycle",
            EngineKind::FullCycleMt { .. } => "interp/full-cycle-mt",
            EngineKind::Essential => "interp/essential",
            EngineKind::EssentialMt { .. } => "interp/essential-mt",
            EngineKind::Threaded => "interp/threaded",
        }
    }

    fn cycle(&self) -> u64 {
        Simulator::cycle(self)
    }

    fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
        Simulator::poke(self, name, v)
    }

    fn peek(&mut self, name: &str) -> Result<Value, GsimError> {
        Simulator::peek(self, name).ok_or_else(|| GsimError::UnknownSignal(name.to_string()))
    }

    fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError> {
        Simulator::load_mem(self, name, image)
    }

    fn step(&mut self, n: u64) -> Result<(), GsimError> {
        self.run(n);
        Ok(())
    }

    #[allow(deprecated)]
    fn run_driven(
        &mut self,
        n: u64,
        drive: &mut dyn FnMut(u64, &mut SessionFrame),
    ) -> Result<(), GsimError> {
        // The input map was prebuilt at compile time; the per-cycle
        // closure cannot reach `self` while the engines hold it, so
        // lend it out for the run and put it back after.
        let inputs = std::mem::take(&mut self.input_ids);
        let mut err: Option<GsimError> = None;
        let mut sf = SessionFrame::default();
        Simulator::run_driven(self, n, |cycle, frame| {
            if err.is_some() {
                return; // stimulus stops after the first error
            }
            sf.clear();
            drive(cycle, &mut sf);
            for (name, v) in sf.pokes() {
                match inputs.get(name.as_str()) {
                    Some(&id) => frame.set(InputHandle(id), *v),
                    None => {
                        err = Some(GsimError::UnknownSignal(name.clone()));
                        return;
                    }
                }
            }
        });
        self.input_ids = inputs;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn counters(&mut self) -> Result<Counters, GsimError> {
        Ok(*Simulator::counters(self))
    }

    fn snapshot(&mut self) -> Result<SnapshotId, GsimError> {
        Ok(self.take_snapshot())
    }

    fn restore(&mut self, id: SnapshotId) -> Result<(), GsimError> {
        self.restore_snapshot(id)
    }

    fn clone_at_snapshot(&mut self) -> Result<Box<dyn Session + Send>, GsimError> {
        Ok(Box::new(self.fork()))
    }

    fn inputs(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
        Ok(self
            .c
            .io_inputs
            .iter()
            .map(|(name, width)| SignalInfo {
                name: name.clone(),
                width: *width,
            })
            .collect())
    }

    fn signals(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
        Ok(self
            .c
            .io_signals
            .iter()
            .map(|(name, width)| SignalInfo {
                name: name.clone(),
                width: *width,
            })
            .collect())
    }

    fn memories(&mut self) -> Result<Vec<MemoryInfo>, GsimError> {
        Ok(self
            .mems
            .iter()
            .map(|m| MemoryInfo {
                name: m.name.clone(),
                depth: m.depth,
                width: m.width,
            })
            .collect())
    }

    fn trace_start(
        &mut self,
        signals: Option<&[String]>,
        sink: Box<dyn WaveSink>,
    ) -> Result<(), GsimError> {
        Simulator::trace_start(self, signals, sink)
    }

    fn trace_stop(&mut self) -> Result<(), GsimError> {
        Simulator::trace_stop(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output out : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      c <= tail(add(c, UInt<8>(1)), 1)
    out <= c
"#;

    fn engines() -> Vec<(&'static str, SimOptions)> {
        vec![
            ("full", SimOptions::full_cycle()),
            ("mt2", SimOptions::full_cycle_mt(2)),
            ("essent", SimOptions::essent_like()),
            ("gsim", SimOptions::default()),
            ("gsim-mt1", SimOptions::essential_mt(1)),
            ("gsim-mt2", SimOptions::essential_mt(2)),
            ("gsim-mt4", SimOptions::essential_mt(4)),
            ("gsim-jit", SimOptions::threaded()),
            (
                "gsim-jit-ablated",
                SimOptions {
                    threaded_dispatch: false,
                    ..SimOptions::threaded()
                },
            ),
        ]
    }

    #[test]
    fn counter_counts_on_all_engines() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        for (name, opts) in engines() {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            sim.poke_u64("en", 1).unwrap();
            sim.run(10);
            assert_eq!(sim.peek_u64("out"), Some(9), "engine {name}");
            sim.poke_u64("en", 0).unwrap();
            sim.run(5);
            assert_eq!(sim.peek_u64("out"), Some(10), "engine {name} hold");
            sim.poke_u64("reset", 1).unwrap();
            sim.step();
            sim.poke_u64("reset", 0).unwrap();
            sim.step();
            assert_eq!(sim.peek_u64("out"), Some(0), "engine {name} reset");
        }
    }

    #[test]
    fn essential_skips_idle_supernodes() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        for opts in [SimOptions::default(), SimOptions::essential_mt(2)] {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            // Idle (en=0, after settling): the counter logic must not
            // be evaluated every cycle.
            sim.run(3); // settle
            sim.reset_counters();
            sim.run(100);
            let evals = sim.counters().node_evals;
            assert!(
                evals < 100,
                "idle circuit should evaluate almost nothing, saw {evals}"
            );
            // Enable: activity returns.
            sim.poke_u64("en", 1).unwrap();
            sim.reset_counters();
            sim.run(10);
            assert!(sim.counters().node_evals > 0);
            assert!(sim.peek_u64("out").is_some());
        }
    }

    #[test]
    fn counters_distinguish_examination_modes() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let mut word_mode = Simulator::compile(&g, &SimOptions::default()).unwrap();
        let mut flag_mode = Simulator::compile(
            &g,
            &SimOptions {
                check_multiple_bits: false,
                ..SimOptions::default()
            },
        )
        .unwrap();
        word_mode.run(50);
        flag_mode.run(50);
        assert!(
            word_mode.counters().aexam_checks < flag_mode.counters().aexam_checks,
            "word-skip must examine fewer active bits ({} vs {})",
            word_mode.counters().aexam_checks,
            flag_mode.counters().aexam_checks
        );
    }

    #[test]
    fn essential_mt_matches_sequential_work_counters() {
        // The parallel sweep evaluates exactly the supernodes the
        // sequential sweep does (only the examination strategy
        // differs), and its merged stats are run-to-run stable.
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let mut seq = Simulator::compile(&g, &SimOptions::default()).unwrap();
        let mut par = Simulator::compile(&g, &SimOptions::essential_mt(4)).unwrap();
        let mut par2 = Simulator::compile(&g, &SimOptions::essential_mt(4)).unwrap();
        for sim in [&mut seq, &mut par, &mut par2] {
            sim.poke_u64("en", 1).unwrap();
            sim.run(40);
        }
        let (s, p) = (seq.counters(), par.counters());
        assert_eq!(s.supernode_evals, p.supernode_evals);
        assert_eq!(s.node_evals, p.node_evals);
        assert_eq!(s.value_changes, p.value_changes);
        assert_eq!(s.activations, p.activations);
        assert_eq!(p, par2.counters(), "parallel stats wobbled between runs");
    }

    #[test]
    fn memory_behaviour_matches_reference() {
        let src = r#"
circuit M :
  module M :
    input clock : Clock
    input waddr : UInt<3>
    input wdata : UInt<16>
    input wen : UInt<1>
    input raddr : UInt<3>
    output q : UInt<16>
    mem ram :
      data-type => UInt<16>
      depth => 8
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    ram.r.addr <= raddr
    ram.r.en <= UInt<1>(1)
    ram.w.addr <= waddr
    ram.w.data <= wdata
    ram.w.en <= wen
    q <= ram.r.data
"#;
        let g = gsim_firrtl::compile(src).unwrap();
        for (name, opts) in engines() {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            let mut reference = gsim_graph::interp::RefInterp::new(&g).unwrap();
            let stim = [
                (1u64, 0xaaaau64, 1u64, 0u64),
                (1, 0xbbbb, 0, 1),
                (2, 0x1234, 1, 1),
                (2, 0x9999, 0, 2),
                (1, 0x5555, 1, 1),
                (1, 0, 0, 1),
            ];
            for (wa, wd, we, ra) in stim {
                sim.poke_u64("waddr", wa).unwrap();
                sim.poke_u64("wdata", wd).unwrap();
                sim.poke_u64("wen", we).unwrap();
                sim.poke_u64("raddr", ra).unwrap();
                reference.poke_u64("waddr", wa).unwrap();
                reference.poke_u64("wdata", wd).unwrap();
                reference.poke_u64("wen", we).unwrap();
                reference.poke_u64("raddr", ra).unwrap();
                sim.step();
                reference.step();
                assert_eq!(
                    sim.peek_u64("q"),
                    reference.peek_u64("q"),
                    "engine {name} diverged"
                );
            }
            // Load-mem API.
            sim.load_mem("ram", &[7; 8]).unwrap();
            assert_eq!(sim.read_mem("ram", 3).unwrap().to_u64(), Some(7));
            assert!(sim.load_mem("nope", &[1]).is_err());
        }
    }

    #[test]
    fn wide_signals_work_on_all_engines() {
        let src = r#"
circuit W :
  module W :
    input a : UInt<100>
    input b : UInt<100>
    output sum : UInt<101>
    output prod_lo : UInt<64>
    output catted : UInt<200>
    sum <= add(a, b)
    prod_lo <= bits(mul(a, b), 63, 0)
    catted <= cat(a, b)
"#;
        let g = gsim_firrtl::compile(src).unwrap();
        let a = Value::from_str_radix("fffffffffffffffffffffffff", 16, 100).unwrap();
        let b = Value::from_u64(0x1234_5678_9abc_def0, 100);
        for (name, opts) in engines() {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            sim.poke("a", a.clone()).unwrap();
            sim.poke("b", b.clone()).unwrap();
            sim.step();
            let expect_sum = gsim_value::ops::add(&a, &b, false);
            assert_eq!(sim.peek("sum"), Some(expect_sum), "engine {name} sum");
            let expect_cat = gsim_value::ops::cat(&a, &b);
            assert_eq!(sim.peek("catted"), Some(expect_cat), "engine {name} cat");
            let prod = gsim_value::ops::mul(&a, &b, false);
            let expect_lo = gsim_value::ops::bits(&prod, 63, 0);
            assert_eq!(sim.peek("prod_lo"), Some(expect_lo), "engine {name} mul");
        }
    }

    #[test]
    fn state_bytes_and_instr_counts_reported() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let sim = Simulator::compile(&g, &SimOptions::default()).unwrap();
        assert!(sim.state_bytes() > 0);
        assert!(sim.num_instrs() > 0);
        assert!(sim.num_supernodes() > 0);
        // The level schedule only exists for the parallel essential
        // engine.
        assert_eq!(sim.num_supernode_levels(), 0);
        let mt = Simulator::compile(&g, &SimOptions::essential_mt(2)).unwrap();
        assert!(mt.num_supernode_levels() > 0);
    }

    #[test]
    fn zero_threads_is_a_compile_error() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        for opts in [SimOptions::essential_mt(0), SimOptions::full_cycle_mt(0)] {
            assert_eq!(
                Simulator::compile(&g, &opts).unwrap_err(),
                CompileError::NoThreads
            );
        }
    }

    #[test]
    fn run_driven_zero_cycles_is_a_no_op_on_every_engine() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        for (name, opts) in engines() {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            sim.poke_u64("en", 1).unwrap();
            sim.run(5);
            let before = sim.peek_u64("out");
            sim.run_driven(0, |_, _| panic!("drive must not be called for n = 0"));
            assert_eq!(sim.cycle(), 5, "engine {name}");
            assert_eq!(sim.peek_u64("out"), before, "engine {name}");
        }
    }

    const MEMCIRC: &str = r#"
circuit M :
  module M :
    input clock : Clock
    input waddr : UInt<3>
    input wdata : UInt<16>
    input wen : UInt<1>
    input raddr : UInt<3>
    output q : UInt<16>
    mem ram :
      data-type => UInt<16>
      depth => 8
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    ram.r.addr <= raddr
    ram.r.en <= UInt<1>(1)
    ram.w.addr <= waddr
    ram.w.data <= wdata
    ram.w.en <= wen
    q <= ram.r.data
"#;

    #[test]
    fn snapshots_share_mem_storage_until_write() {
        let g = gsim_firrtl::compile(MEMCIRC).unwrap();
        let mut sim = Simulator::compile(&g, &SimOptions::default()).unwrap();
        sim.load_mem("ram", &[9; 8]).unwrap();
        sim.poke_u64("wen", 0).unwrap();
        sim.run(3);
        let id = sim.take_snapshot();
        // No memory write since the snapshot: storage is still shared.
        let (owned, deep) = sim.snapshot_mem_bytes();
        assert_eq!(owned, 0, "read-only arena must stay shared");
        assert!(deep > 0);
        // A committed memory write unshares the live arena.
        sim.poke_u64("wen", 1).unwrap();
        sim.poke_u64("waddr", 2).unwrap();
        sim.poke_u64("wdata", 0x1234).unwrap();
        sim.step();
        let (owned, deep2) = sim.snapshot_mem_bytes();
        assert_eq!(owned, deep2);
        assert_eq!(deep, deep2);
        // The snapshot preserved the pre-write image.
        sim.restore_snapshot(id).unwrap();
        assert_eq!(sim.read_mem("ram", 2).unwrap().to_u64(), Some(9));
    }

    #[test]
    fn fork_diverges_independently() {
        let g = gsim_firrtl::compile(MEMCIRC).unwrap();
        for (name, opts) in engines() {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            sim.load_mem("ram", &[5; 8]).unwrap();
            sim.poke_u64("raddr", 1).unwrap();
            sim.poke_u64("wen", 0).unwrap();
            sim.run(2);
            let mut child = sim.fork();
            assert_eq!(child.cycle(), sim.cycle(), "engine {name}");
            assert_eq!(child.counters(), sim.counters(), "engine {name}");
            // The child writes; the parent must not observe it. The
            // write commits at the end of the first step; the
            // combinational read reflects it on the next sweep.
            child.poke_u64("wen", 1).unwrap();
            child.poke_u64("waddr", 1).unwrap();
            child.poke_u64("wdata", 0xbeef).unwrap();
            child.step();
            child.poke_u64("wen", 0).unwrap();
            child.step();
            sim.run(2);
            assert_eq!(child.read_mem("ram", 1).unwrap().to_u64(), Some(0xbeef));
            assert_eq!(child.peek_u64("q"), Some(0xbeef), "engine {name}");
            assert_eq!(sim.peek_u64("q"), Some(5), "engine {name} parent");
            assert_eq!(sim.read_mem("ram", 1).unwrap().to_u64(), Some(5));
        }
    }

    #[test]
    fn poke_rejects_non_inputs() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let mut sim = Simulator::compile(&g, &SimOptions::default()).unwrap();
        assert!(sim.poke_u64("out", 1).is_err());
        assert!(sim.poke_u64("missing", 1).is_err());
    }

    #[test]
    fn traced_waves_are_identical_across_engines() {
        use gsim_wave::{first_difference, WaveCell};
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let mut waves = Vec::new();
        for (name, opts) in engines() {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            let cell = WaveCell::new();
            sim.trace_start(None, Box::new(cell.sink())).unwrap();
            sim.poke_u64("en", 1).unwrap();
            sim.run(6);
            sim.poke_u64("en", 0).unwrap();
            sim.run(3);
            sim.poke_u64("reset", 1).unwrap();
            sim.run(2);
            sim.trace_stop().unwrap();
            waves.push((name, cell.take()));
        }
        let (base_name, base) = &waves[0];
        assert!(
            base.changes
                .iter()
                .any(|&(_, s, _)| base.signals[s].name == "out"),
            "trace must record the counter output"
        );
        for (name, wave) in &waves[1..] {
            assert_eq!(
                first_difference(base, wave),
                None,
                "engine {name} wave diverged from {base_name}"
            );
        }
    }

    #[test]
    fn trace_subset_and_errors() {
        use gsim_wave::WaveCell;
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let mut sim = Simulator::compile(&g, &SimOptions::default()).unwrap();
        // Unknown subset name is rejected up front, leaving no trace.
        let cell = WaveCell::new();
        let err = sim
            .trace_start(Some(&["nope".to_string()]), Box::new(cell.sink()))
            .unwrap_err();
        assert!(matches!(err, GsimError::UnknownSignal(n) if n == "nope"));
        assert!(matches!(sim.trace_stop(), Err(GsimError::Config(_))));
        // A subset traces only the named signals; double-start fails.
        let cell = WaveCell::new();
        sim.trace_start(Some(&["out".to_string()]), Box::new(cell.sink()))
            .unwrap();
        let second = WaveCell::new();
        assert!(matches!(
            sim.trace_start(None, Box::new(second.sink())),
            Err(GsimError::Config(_))
        ));
        sim.poke_u64("en", 1).unwrap();
        sim.run(4);
        sim.trace_stop().unwrap();
        let wave = cell.take();
        assert_eq!(wave.signals.len(), 1);
        assert_eq!(wave.signals[0].name, "out");
        // Baseline at cycle 0 plus per-cycle increments of `out`:
        // values 0,1,2,3 at times 0,2,3,4 (the first enabled cycle
        // leaves out at 0; it becomes observable one cycle later).
        assert!(wave.changes.len() >= 4, "{:?}", wave.changes);
    }
}
