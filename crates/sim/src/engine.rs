//! The [`Simulator`]: compiled-design execution engines.

use crate::compile::{self, Compiled, Task, TaskKind};
use crate::counters::Counters;
use crate::exec::{self, AtomicMem, AtomicMems, Ctx};
use crate::storage::{AtomicStateRef, MemArena, Slot, Space};
use crate::{CompileError, EngineKind, SimOptions};
use gsim_graph::Graph;
use gsim_value::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// A compiled, runnable simulation.
///
/// See the crate docs for the engine families. All engines share this
/// interface; behaviour is bit-identical across engines (pinned by
/// differential tests against the reference interpreter).
pub struct Simulator {
    c: Compiled,
    opts: SimOptions,
    state: Vec<u64>,
    scratch: Vec<u64>,
    mems: Vec<MemArena>,
    /// Supernode active bits (essential engine).
    flags: Vec<u64>,
    /// Supernodes evaluated this cycle (for register commit).
    fired: Vec<u32>,
    /// Register-info indices per supernode.
    supernode_regs: Vec<Vec<u32>>,
    dirty_mems: Vec<bool>,
    counters: Counters,
    cycle: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("engine", &self.opts.engine)
            .field("supernodes", &self.c.num_supernodes)
            .field("state_words", &self.c.state_words)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Simulator {
    /// Compiles `graph` for execution under `opts`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for invalid graphs or a zero thread
    /// count.
    pub fn compile(graph: &Graph, opts: &SimOptions) -> Result<Simulator, CompileError> {
        let mut c = compile::compile(graph, opts)?;
        let mems = std::mem::take(&mut c.mems);
        let state = vec![0u64; c.state_words];
        let scratch = vec![0u64; c.scratch_words.max(1)];
        let flag_words = c.num_supernodes.div_ceil(64);
        let mut flags = vec![0u64; flag_words.max(1)];
        // Everything starts active: the first cycle evaluates the whole
        // design, establishing the baseline values.
        for (i, w) in flags.iter_mut().enumerate() {
            let base = i * 64;
            let valid = c.num_supernodes.saturating_sub(base).min(64);
            *w = if valid == 64 {
                u64::MAX
            } else {
                (1u64 << valid) - 1
            };
        }
        let mut supernode_regs = vec![Vec::new(); c.supernode_tasks.len()];
        for (sn, &(lo, hi)) in c.supernode_tasks.iter().enumerate() {
            for task in &c.tasks[lo as usize..hi as usize] {
                if matches!(task.kind, TaskKind::Reg) {
                    if let Some(ri) = c.reg_infos.iter().position(|r| r.node == task.node) {
                        supernode_regs[sn].push(ri as u32);
                    }
                }
            }
        }
        let dirty_mems = vec![false; mems.len()];
        Ok(Simulator {
            c,
            opts: *opts,
            state,
            scratch,
            mems,
            flags,
            fired: Vec::new(),
            supernode_regs,
            dirty_mems,
            counters: Counters::default(),
            cycle: 0,
        })
    }

    /// Completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runtime cost counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resets the cost counters (not the simulation state).
    pub fn reset_counters(&mut self) {
        self.counters = Counters::default();
    }

    /// Number of supernodes in the compiled schedule.
    pub fn num_supernodes(&self) -> usize {
        self.c.num_supernodes
    }

    /// Number of bytecode instructions in the compiled design (a code
    /// size proxy for Table IV).
    pub fn num_instrs(&self) -> usize {
        self.c.tasks.iter().map(|t| t.instrs.len()).sum()
    }

    /// Bytes of mutable signal state (Table IV's "data size"; memories
    /// excluded, as in the paper).
    pub fn state_bytes(&self) -> usize {
        self.c.state_words * 8
    }

    /// Time spent building the supernode partition.
    pub fn partition_time(&self) -> std::time::Duration {
        self.c.partition_time
    }

    fn node_by_name(&self, name: &str) -> Option<u32> {
        self.c.names.get(name).copied()
    }

    /// Sets a top-level input by name.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the name is unknown or not an input.
    pub fn poke(&mut self, name: &str, v: Value) -> Result<(), String> {
        let id = self
            .node_by_name(name)
            .ok_or_else(|| format!("no node named {name:?}"))?;
        let (_, _, is_input) = self.c.node_meta[id as usize];
        if !is_input {
            return Err(format!("{name:?} is not an input"));
        }
        let slot = self.c.node_slot[id as usize];
        let fitted = v.zext_or_trunc(slot.width);
        let mut changed = false;
        for (i, &w) in fitted.words().iter().enumerate() {
            let off = slot.off as usize + i;
            if self.state[off] != w {
                self.state[off] = w;
                changed = true;
            }
        }
        if changed {
            if let Some(&(lo, hi)) = self.c.input_act.get(&id) {
                for &sn in &self.c.act_list[lo as usize..hi as usize] {
                    self.flags[(sn >> 6) as usize] |= 1u64 << (sn & 63);
                }
            }
        }
        Ok(())
    }

    /// Sets a top-level input by name from a `u64`.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the name is unknown or not an input.
    pub fn poke_u64(&mut self, name: &str, x: u64) -> Result<(), String> {
        let id = self
            .node_by_name(name)
            .ok_or_else(|| format!("no node named {name:?}"))?;
        let w = self.c.node_meta[id as usize].0;
        self.poke(name, Value::from_u64(x, w))
    }

    /// Reads any named node's current value.
    pub fn peek(&self, name: &str) -> Option<Value> {
        let id = self.node_by_name(name)?;
        let slot = self.c.node_slot[id as usize];
        let mut ws = vec![0u64; slot.words as usize];
        for (i, w) in ws.iter_mut().enumerate() {
            *w = self.state[slot.off as usize + i];
        }
        Some(Value::from_words(ws, slot.width))
    }

    /// Reads a named node as `u64` (`None` if missing or too wide).
    pub fn peek_u64(&self, name: &str) -> Option<u64> {
        self.peek(name).and_then(|v| v.to_u64())
    }

    /// Loads a memory image (entry `i` at address `i`).
    ///
    /// # Errors
    ///
    /// Returns `Err` for unknown memories or oversized images.
    pub fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), String> {
        let mem = self
            .mems
            .iter_mut()
            .find(|m| m.name == name)
            .ok_or_else(|| format!("no memory named {name:?}"))?;
        mem.load_image(image)
    }

    /// Reads one memory entry.
    pub fn read_mem(&self, name: &str, addr: u64) -> Option<Value> {
        let mem = self.mems.iter().find(|m| m.name == name)?;
        mem.entry(addr)
            .map(|ws| Value::from_words(ws.to_vec(), mem.width))
    }

    /// Advances one clock cycle.
    pub fn step(&mut self) {
        self.run(1);
    }

    /// Advances `n` clock cycles.
    pub fn run(&mut self, n: u64) {
        match self.opts.engine {
            EngineKind::FullCycle => {
                for _ in 0..n {
                    self.step_full();
                }
            }
            EngineKind::Essential => {
                for _ in 0..n {
                    self.step_essential();
                }
            }
            EngineKind::FullCycleMt { threads } => self.run_mt(n, threads.max(1)),
        }
    }

    // ----- sequential full-cycle (Listing 1) -----

    fn step_full(&mut self) {
        let mut instrs_run = 0u64;
        let mut evals = 0u64;
        {
            let mut ctx = Ctx {
                state: &mut self.state[..],
                scratch: &mut self.scratch[..],
                consts: &self.c.consts,
                mems: &self.mems[..],
            };
            for task in &self.c.tasks {
                if matches!(task.kind, TaskKind::Input) {
                    continue;
                }
                exec::run_instrs(&mut ctx, &task.instrs);
                instrs_run += task.instrs.len() as u64;
                evals += 1;
            }
        }
        self.counters.node_evals += evals;
        self.counters.instrs_executed += instrs_run;
        self.commit_full();
        self.cycle += 1;
        self.counters.cycles += 1;
    }

    fn commit_full(&mut self) {
        // Registers: unconditional shadow -> current.
        for ri in 0..self.c.reg_infos.len() {
            let (cur, shadow) = {
                let r = &self.c.reg_infos[ri];
                (r.cur, r.shadow)
            };
            for i in 0..cur.words as usize {
                self.state[cur.off as usize + i] = self.state[shadow.off as usize + i];
            }
        }
        // Slow-path reset (when the graph still carries metadata).
        for gi in 0..self.c.reset_groups.len() {
            self.counters.reset_checks += 1;
            let signal = self.c.reset_groups[gi].signal;
            if self.state[signal.off as usize] == 0 {
                continue;
            }
            let regs = self.c.reset_groups[gi].regs.clone();
            for ri in regs {
                let (cur, init) = {
                    let r = &self.c.reg_infos[ri as usize];
                    (r.cur, r.init.expect("reset reg has init"))
                };
                for i in 0..cur.words as usize {
                    self.state[cur.off as usize + i] = self.c.consts[init.off as usize + i];
                }
            }
        }
        // Memory writes (every enabled port, every cycle, port order).
        self.apply_writes(false);
    }

    /// Applies all enabled write ports; when `track` is set, memories
    /// whose content changed get their read-port supernodes activated.
    fn apply_writes(&mut self, track: bool) {
        for p in 0..self.c.write_ports.len() {
            let (mem, en, addr, data) = {
                let w = &self.c.write_ports[p];
                (w.mem, w.en, w.addr, w.data)
            };
            if self.state[en.off as usize] == 0 && en.words <= 1 {
                continue;
            }
            if en.words > 1 {
                let all_zero = (0..en.words as usize).all(|i| self.state[en.off as usize + i] == 0);
                if all_zero {
                    continue;
                }
            }
            let a = self.state[addr.off as usize];
            let high_zero =
                (1..addr.words as usize).all(|i| self.state[addr.off as usize + i] == 0);
            let a = if high_zero { a } else { u64::MAX };
            let arena = &mut self.mems[mem as usize];
            let width = arena.width;
            if let Some(entry) = arena.entry_mut(a) {
                let mut changed = false;
                for (i, slot_word) in entry.iter_mut().enumerate() {
                    let mut v = if i < data.words as usize {
                        self.state[data.off as usize + i]
                    } else {
                        0
                    };
                    // mask the top word to the memory width
                    let top_bits = width as usize - i * 64;
                    if top_bits < 64 {
                        v &= (1u64 << top_bits) - 1;
                    }
                    if *slot_word != v {
                        *slot_word = v;
                        changed = true;
                    }
                }
                if changed && track {
                    self.dirty_mems[mem as usize] = true;
                }
            }
        }
    }

    // ----- essential-signal engine (Listings 2-4) -----

    fn step_essential(&mut self) {
        self.fired.clear();
        let num_sn = self.c.num_supernodes;
        let word_skip = self.opts.check_multiple_bits;
        // Combinational activation only ever points forward in the
        // supernode topo order, but "forward" can land in the word
        // currently being drained — both modes therefore re-check bits
        // set while processing (clearing each bit before evaluation).
        for w in 0..self.flags.len() {
            if word_skip {
                // Listing 4: one condition covers 64 active bits. Always
                // take the lowest *fresh* set bit so evaluation stays in
                // strict supernode-topo order even when processing a bit
                // activates a lower-numbered bit's successor in the same
                // word — a stale snapshot would evaluate out of order and
                // redo work.
                self.counters.aexam_checks += 1;
                loop {
                    let bits = self.flags[w];
                    if bits == 0 {
                        break;
                    }
                    let t = bits.trailing_zeros();
                    self.flags[w] &= !(1u64 << t);
                    self.counters.aexam_checks += 1;
                    self.eval_supernode((w * 64) + t as usize);
                }
            } else {
                // ESSENT: one branch per supernode flag, ascending, so
                // forward activations in this word are seen below.
                let base = w * 64;
                let hi = (base + 64).min(num_sn);
                for sn in base..hi {
                    self.counters.aexam_checks += 1;
                    if self.flags[w] >> (sn - base) & 1 == 1 {
                        self.flags[w] &= !(1u64 << (sn - base));
                        self.eval_supernode(sn);
                    }
                }
            }
        }
        self.commit_essential();
        self.cycle += 1;
        self.counters.cycles += 1;
    }

    fn eval_supernode(&mut self, sn: usize) {
        self.fired.push(sn as u32);
        self.counters.supernode_evals += 1;
        let (lo, hi) = self.c.supernode_tasks[sn];
        for ti in lo..hi {
            let task: &Task = &self.c.tasks[ti as usize];
            if matches!(task.kind, TaskKind::Input) {
                continue;
            }
            // Copy the small task header so `self` is free to mutate.
            let (kind, result, out, act, branchless, n_instrs) = (
                task.kind,
                task.result,
                task.out,
                task.act,
                task.branchless,
                task.instrs.len() as u64,
            );
            self.counters.node_evals += 1;
            self.counters.instrs_executed += n_instrs;
            {
                let task: &Task = &self.c.tasks[ti as usize];
                let mut ctx = Ctx {
                    state: &mut self.state[..],
                    scratch: &mut self.scratch[..],
                    consts: &self.c.consts,
                    mems: &self.mems[..],
                };
                exec::run_instrs(&mut ctx, &task.instrs);
            }
            if matches!(kind, TaskKind::Comb) {
                // Compare & store & activate.
                let changed = self.store_if_changed(result, out);
                if changed {
                    self.counters.value_changes += 1;
                }
                self.activate(act, branchless, changed);
            }
        }
    }

    /// Compares `result` against `out`; on difference copies and
    /// returns `true`.
    fn store_if_changed(&mut self, result: Slot, out: Slot) -> bool {
        if result == out {
            // value computed in place (pure-alias tasks): treat as
            // changed so successors stay conservative-correct.
            return true;
        }
        let n = out.words as usize;
        let mut changed = false;
        for i in 0..n {
            let new = match result.space {
                Space::State => self.state[result.off as usize + i],
                Space::Scratch => self.scratch[result.off as usize + i],
                Space::Const => self.c.consts[result.off as usize + i],
            };
            let off = out.off as usize + i;
            if self.state[off] != new {
                self.state[off] = new;
                changed = true;
            }
        }
        changed
    }

    #[inline]
    fn activate(&mut self, act: (u32, u32), branchless: bool, changed: bool) {
        let (lo, hi) = act;
        if lo == hi {
            return;
        }
        let list = &self.c.act_list[lo as usize..hi as usize];
        if branchless {
            // ESSENT-style: unconditional ORs with a change mask.
            let mask = (changed as u64).wrapping_neg();
            for &sn in list {
                self.flags[(sn >> 6) as usize] |= (1u64 << (sn & 63)) & mask;
            }
            self.counters.activation_ops += list.len() as u64;
            if changed {
                self.counters.activations += list.len() as u64;
            }
        } else {
            // Branchy: skip all work when unchanged.
            self.counters.activation_ops += 1;
            if changed {
                for &sn in list {
                    self.flags[(sn >> 6) as usize] |= 1u64 << (sn & 63);
                }
                self.counters.activation_ops += list.len() as u64;
                self.counters.activations += list.len() as u64;
            }
        }
    }

    fn commit_essential(&mut self) {
        // Registers of fired supernodes: commit on change, waking
        // readers next cycle.
        for fi in 0..self.fired.len() {
            let sn = self.fired[fi] as usize;
            for k in 0..self.supernode_regs[sn].len() {
                let ri = self.supernode_regs[sn][k] as usize;
                let (cur, shadow, act) = {
                    let r = &self.c.reg_infos[ri];
                    (r.cur, r.shadow, r.act)
                };
                let mut changed = false;
                for i in 0..cur.words as usize {
                    let new = self.state[shadow.off as usize + i];
                    let off = cur.off as usize + i;
                    if self.state[off] != new {
                        self.state[off] = new;
                        changed = true;
                    }
                }
                if changed {
                    self.counters.value_changes += 1;
                    self.activate(act, false, true);
                }
            }
        }
        // Listing 6 slow path: one check per distinct reset signal.
        for gi in 0..self.c.reset_groups.len() {
            self.counters.reset_checks += 1;
            let signal = self.c.reset_groups[gi].signal;
            if self.state[signal.off as usize] == 0 {
                continue;
            }
            for k in 0..self.c.reset_groups[gi].regs.len() {
                let ri = self.c.reset_groups[gi].regs[k] as usize;
                let (cur, init, act) = {
                    let r = &self.c.reg_infos[ri];
                    (r.cur, r.init.expect("init"), r.act)
                };
                let mut changed = false;
                for i in 0..cur.words as usize {
                    let new = self.c.consts[init.off as usize + i];
                    let off = cur.off as usize + i;
                    if self.state[off] != new {
                        self.state[off] = new;
                        changed = true;
                    }
                }
                if changed {
                    self.activate(act, false, true);
                }
            }
        }
        // Memory writes; activate read ports of changed memories.
        self.apply_writes(true);
        for m in 0..self.dirty_mems.len() {
            if !self.dirty_mems[m] {
                continue;
            }
            self.dirty_mems[m] = false;
            for i in 0..self.c.mem_read_act[m].len() {
                let sn = self.c.mem_read_act[m][i];
                self.flags[(sn >> 6) as usize] |= 1u64 << (sn & 63);
            }
        }
    }

    // ----- levelized multithreaded full-cycle -----

    fn run_mt(&mut self, n: u64, threads: usize) {
        // Copy state and memories into shared atomics for the run.
        let atomic_state: Vec<AtomicU64> = self.state.iter().map(|&w| AtomicU64::new(w)).collect();
        let atomic_mems = AtomicMems {
            arenas: self
                .mems
                .iter()
                .map(|m| AtomicMem {
                    depth: m.depth,
                    width: m.width,
                    words_per_entry: gsim_value::words_for(m.width).max(1),
                    data: {
                        let mut v = Vec::new();
                        for a in 0..m.depth {
                            v.extend(
                                m.entry(a)
                                    .expect("in range")
                                    .iter()
                                    .map(|&w| AtomicU64::new(w)),
                            );
                        }
                        v
                    },
                })
                .collect(),
        };
        // Chunk each level across threads.
        let chunks: Vec<Vec<(u32, u32)>> = self
            .c
            .level_tasks
            .iter()
            .map(|&(lo, hi)| {
                let len = (hi - lo) as usize;
                let per = len.div_ceil(threads).max(1);
                (0..threads)
                    .map(|t| {
                        let s = (lo as usize + t * per).min(hi as usize);
                        let e = (s + per).min(hi as usize);
                        (s as u32, e as u32)
                    })
                    .collect()
            })
            .collect();
        let barrier = Barrier::new(threads);
        let c = &self.c;
        let mems_ref = &atomic_mems;
        let state_ref = &atomic_state[..];
        std::thread::scope(|scope| {
            for t in 0..threads {
                let chunks = &chunks;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut scratch = vec![0u64; c.scratch_words.max(1)];
                    for _ in 0..n {
                        for level in chunks {
                            let (lo, hi) = level[t];
                            {
                                let mut ctx = Ctx {
                                    state: AtomicStateRef(state_ref),
                                    scratch: &mut scratch[..],
                                    consts: &c.consts,
                                    mems: mems_ref,
                                };
                                for ti in lo..hi {
                                    let task = &c.tasks[ti as usize];
                                    if matches!(task.kind, TaskKind::Input) {
                                        continue;
                                    }
                                    exec::run_instrs(&mut ctx, &task.instrs);
                                }
                            }
                            barrier.wait();
                        }
                        if t == 0 {
                            commit_mt(c, state_ref, mems_ref);
                        }
                        barrier.wait();
                    }
                });
            }
        });
        // Copy results back.
        for (i, w) in self.state.iter_mut().enumerate() {
            *w = atomic_state[i].load(Ordering::Relaxed);
        }
        for (m, arena) in self.mems.iter_mut().enumerate() {
            let src = &atomic_mems.arenas[m];
            for a in 0..arena.depth {
                let entry = arena.entry_mut(a).expect("in range");
                let base = a as usize * src.words_per_entry;
                for (i, w) in entry.iter_mut().enumerate() {
                    *w = src.data[base + i].load(Ordering::Relaxed);
                }
            }
        }
        // Analytic counters: full-cycle evaluates everything.
        let evals: u64 = self
            .c
            .tasks
            .iter()
            .filter(|t| !matches!(t.kind, TaskKind::Input))
            .count() as u64;
        let instrs: u64 = self.c.tasks.iter().map(|t| t.instrs.len() as u64).sum();
        self.counters.node_evals += evals * n;
        self.counters.instrs_executed += instrs * n;
        self.counters.cycles += n;
        self.cycle += n;
    }
}

/// Commit phase of the multithreaded engine (runs on thread 0 between
/// barriers; all traffic goes through atomics, ordered by the barriers).
fn commit_mt(c: &Compiled, state: &[AtomicU64], mems: &AtomicMems) {
    let load = |s: Slot, i: usize| state[s.off as usize + i].load(Ordering::Relaxed);
    let store = |s: Slot, i: usize, v: u64| state[s.off as usize + i].store(v, Ordering::Relaxed);
    for r in &c.reg_infos {
        for i in 0..r.cur.words as usize {
            store(r.cur, i, load(r.shadow, i));
        }
    }
    for g in &c.reset_groups {
        if load(g.signal, 0) == 0 {
            continue;
        }
        for &ri in &g.regs {
            let r = &c.reg_infos[ri as usize];
            let init = r.init.expect("init");
            for i in 0..r.cur.words as usize {
                store(r.cur, i, c.consts[init.off as usize + i]);
            }
        }
    }
    for w in &c.write_ports {
        let en_zero = (0..w.en.words as usize).all(|i| load(w.en, i) == 0);
        if en_zero {
            continue;
        }
        let mut addr = load(w.addr, 0);
        if (1..w.addr.words as usize).any(|i| load(w.addr, i) != 0) {
            addr = u64::MAX;
        }
        let arena = &mems.arenas[w.mem as usize];
        if addr >= arena.depth {
            continue;
        }
        let base = addr as usize * arena.words_per_entry;
        for i in 0..arena.words_per_entry {
            let mut v = if i < w.data.words as usize {
                load(w.data, i)
            } else {
                0
            };
            let top_bits = arena.width as usize - i * 64;
            if top_bits < 64 {
                v &= (1u64 << top_bits) - 1;
            }
            arena.data[base + i].store(v, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output out : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      c <= tail(add(c, UInt<8>(1)), 1)
    out <= c
"#;

    fn engines() -> Vec<(&'static str, SimOptions)> {
        vec![
            ("full", SimOptions::full_cycle()),
            ("mt2", SimOptions::full_cycle_mt(2)),
            ("essent", SimOptions::essent_like()),
            ("gsim", SimOptions::default()),
        ]
    }

    #[test]
    fn counter_counts_on_all_engines() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        for (name, opts) in engines() {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            sim.poke_u64("en", 1).unwrap();
            sim.run(10);
            assert_eq!(sim.peek_u64("out"), Some(9), "engine {name}");
            sim.poke_u64("en", 0).unwrap();
            sim.run(5);
            assert_eq!(sim.peek_u64("out"), Some(10), "engine {name} hold");
            sim.poke_u64("reset", 1).unwrap();
            sim.step();
            sim.poke_u64("reset", 0).unwrap();
            sim.step();
            assert_eq!(sim.peek_u64("out"), Some(0), "engine {name} reset");
        }
    }

    #[test]
    fn essential_skips_idle_supernodes() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let mut sim = Simulator::compile(&g, &SimOptions::default()).unwrap();
        // Idle (en=0, after settling): the counter logic must not be
        // evaluated every cycle.
        sim.run(3); // settle
        sim.reset_counters();
        sim.run(100);
        let evals = sim.counters().node_evals;
        assert!(
            evals < 100,
            "idle circuit should evaluate almost nothing, saw {evals}"
        );
        // Enable: activity returns.
        sim.poke_u64("en", 1).unwrap();
        sim.reset_counters();
        sim.run(10);
        assert!(sim.counters().node_evals > 0);
        assert!(sim.peek_u64("out").is_some());
    }

    #[test]
    fn counters_distinguish_examination_modes() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let mut word_mode = Simulator::compile(&g, &SimOptions::default()).unwrap();
        let mut flag_mode = Simulator::compile(
            &g,
            &SimOptions {
                check_multiple_bits: false,
                ..SimOptions::default()
            },
        )
        .unwrap();
        word_mode.run(50);
        flag_mode.run(50);
        assert!(
            word_mode.counters().aexam_checks < flag_mode.counters().aexam_checks,
            "word-skip must examine fewer active bits ({} vs {})",
            word_mode.counters().aexam_checks,
            flag_mode.counters().aexam_checks
        );
    }

    #[test]
    fn memory_behaviour_matches_reference() {
        let src = r#"
circuit M :
  module M :
    input clock : Clock
    input waddr : UInt<3>
    input wdata : UInt<16>
    input wen : UInt<1>
    input raddr : UInt<3>
    output q : UInt<16>
    mem ram :
      data-type => UInt<16>
      depth => 8
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    ram.r.addr <= raddr
    ram.r.en <= UInt<1>(1)
    ram.w.addr <= waddr
    ram.w.data <= wdata
    ram.w.en <= wen
    q <= ram.r.data
"#;
        let g = gsim_firrtl::compile(src).unwrap();
        for (name, opts) in engines() {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            let mut reference = gsim_graph::interp::RefInterp::new(&g).unwrap();
            let stim = [
                (1u64, 0xaaaau64, 1u64, 0u64),
                (1, 0xbbbb, 0, 1),
                (2, 0x1234, 1, 1),
                (2, 0x9999, 0, 2),
                (1, 0x5555, 1, 1),
                (1, 0, 0, 1),
            ];
            for (wa, wd, we, ra) in stim {
                sim.poke_u64("waddr", wa).unwrap();
                sim.poke_u64("wdata", wd).unwrap();
                sim.poke_u64("wen", we).unwrap();
                sim.poke_u64("raddr", ra).unwrap();
                reference.poke_u64("waddr", wa).unwrap();
                reference.poke_u64("wdata", wd).unwrap();
                reference.poke_u64("wen", we).unwrap();
                reference.poke_u64("raddr", ra).unwrap();
                sim.step();
                reference.step();
                assert_eq!(
                    sim.peek_u64("q"),
                    reference.peek_u64("q"),
                    "engine {name} diverged"
                );
            }
            // Load-mem API.
            sim.load_mem("ram", &[7; 8]).unwrap();
            assert_eq!(sim.read_mem("ram", 3).unwrap().to_u64(), Some(7));
            assert!(sim.load_mem("nope", &[1]).is_err());
        }
    }

    #[test]
    fn wide_signals_work_on_all_engines() {
        let src = r#"
circuit W :
  module W :
    input a : UInt<100>
    input b : UInt<100>
    output sum : UInt<101>
    output prod_lo : UInt<64>
    output catted : UInt<200>
    sum <= add(a, b)
    prod_lo <= bits(mul(a, b), 63, 0)
    catted <= cat(a, b)
"#;
        let g = gsim_firrtl::compile(src).unwrap();
        let a = Value::from_str_radix("fffffffffffffffffffffffff", 16, 100).unwrap();
        let b = Value::from_u64(0x1234_5678_9abc_def0, 100);
        for (name, opts) in engines() {
            let mut sim = Simulator::compile(&g, &opts).unwrap();
            sim.poke("a", a.clone()).unwrap();
            sim.poke("b", b.clone()).unwrap();
            sim.step();
            let expect_sum = gsim_value::ops::add(&a, &b, false);
            assert_eq!(sim.peek("sum"), Some(expect_sum), "engine {name} sum");
            let expect_cat = gsim_value::ops::cat(&a, &b);
            assert_eq!(sim.peek("catted"), Some(expect_cat), "engine {name} cat");
            let prod = gsim_value::ops::mul(&a, &b, false);
            let expect_lo = gsim_value::ops::bits(&prod, 63, 0);
            assert_eq!(sim.peek("prod_lo"), Some(expect_lo), "engine {name} mul");
        }
    }

    #[test]
    fn state_bytes_and_instr_counts_reported() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let sim = Simulator::compile(&g, &SimOptions::default()).unwrap();
        assert!(sim.state_bytes() > 0);
        assert!(sim.num_instrs() > 0);
        assert!(sim.num_supernodes() > 0);
    }

    #[test]
    fn poke_rejects_non_inputs() {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        let mut sim = Simulator::compile(&g, &SimOptions::default()).unwrap();
        assert!(sim.poke_u64("out", 1).is_err());
        assert!(sim.poke_u64("missing", 1).is_err());
    }
}
