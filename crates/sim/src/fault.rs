//! Deterministic fault injection for the chaos test suite.
//!
//! A [`FaultPlan`] names the exact failures to inject into a run —
//! kill the AoT child after cycle N, tear a cache publish, reset a
//! service socket at the Kth command — with **no wall-clock
//! randomness**: every knob is keyed to a deterministic count
//! (cycles executed, commands received), so a chaos test that passes
//! once passes always and a failure reproduces under `--nocapture`
//! with the same plan string.
//!
//! Plans travel as compact comma-separated specs
//! (`kill_child_at_cycle=40,torn_publish`) so they fit in an
//! environment variable (`GSIM_FAULT`), a CLI flag, or a config
//! field. The components that honour a plan are:
//!
//! * the emitted AoT simulator (`GSIM_CHILD_FAULT`, derived via
//!   [`FaultPlan::child_env`]): `kill_child_at_cycle` aborts the
//!   process after that cycle, `stall_child_at_cycle` stops
//!   responding without exiting (exercising the deadline path);
//! * the artifact cache: `torn_publish` truncates the compiled
//!   binary after its `ok` marker is written (a torn write the
//!   next `probe` must detect), `publish_io_error` makes the tmp
//!   write fail (disk-full) without leaving a half-entry;
//! * the service: `reset_session_at_cmd` hard-drops a connection at
//!   the Nth command, `panic_session_at_cmd` panics the session
//!   thread there (exercising `catch_unwind`), `short_writes`
//!   delivers every wire write one byte at a time.

/// A deterministic set of faults to inject into one run.
///
/// The default plan is empty (no faults). Tests construct plans
/// directly or via [`FaultPlan::parse`]; services read one from the
/// environment with [`FaultPlan::from_env`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Abort the compiled AoT child process after it completes this
    /// simulation cycle (a deterministic stand-in for `kill -9` /
    /// OOM-kill mid-run).
    pub kill_child_at_cycle: Option<u64>,
    /// Make the AoT child stop responding (without exiting) after
    /// this cycle, so drivers hit their per-operation deadline.
    pub stall_child_at_cycle: Option<u64>,
    /// Truncate the compiled binary after the cache entry's `ok`
    /// marker is written — a torn publish the next open must detect.
    pub torn_publish: bool,
    /// Fail the cache's tmp-dir write as if the disk were full; the
    /// publish must error cleanly and leave no half-entry behind.
    pub publish_io_error: bool,
    /// Deliver every service wire write one byte at a time (short
    /// writes a correct reader must reassemble).
    pub short_writes: bool,
    /// Hard-drop the service connection when the session receives
    /// its Nth command (1-based).
    pub reset_session_at_cmd: Option<u64>,
    /// Panic the service session thread when it receives its Nth
    /// command (1-based) — exercises the `catch_unwind` boundary.
    pub panic_session_at_cmd: Option<u64>,
}

impl FaultPlan {
    /// `true` if this plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Parses a compact spec: comma-separated `knob=value` pairs (for
    /// counted faults) and bare flags (for boolean ones), e.g.
    /// `kill_child_at_cycle=40,torn_publish,short_writes`. The empty
    /// string is the empty plan.
    ///
    /// # Errors
    ///
    /// A message naming the first unknown knob or unparsable value.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part, None),
            };
            let counted = |v: Option<&str>| -> Result<Option<u64>, String> {
                let v = v.ok_or_else(|| format!("fault knob {key} needs =<count>"))?;
                v.parse()
                    .map(Some)
                    .map_err(|_| format!("fault knob {key}: bad count {v:?}"))
            };
            let flag = |v: Option<&str>| -> Result<bool, String> {
                match v {
                    None | Some("1") | Some("true") => Ok(true),
                    Some("0") | Some("false") => Ok(false),
                    Some(other) => Err(format!("fault knob {key}: bad flag {other:?}")),
                }
            };
            match key {
                "kill_child_at_cycle" => plan.kill_child_at_cycle = counted(value)?,
                "stall_child_at_cycle" => plan.stall_child_at_cycle = counted(value)?,
                "reset_session_at_cmd" => plan.reset_session_at_cmd = counted(value)?,
                "panic_session_at_cmd" => plan.panic_session_at_cmd = counted(value)?,
                "torn_publish" => plan.torn_publish = flag(value)?,
                "publish_io_error" => plan.publish_io_error = flag(value)?,
                "short_writes" => plan.short_writes = flag(value)?,
                other => return Err(format!("unknown fault knob {other:?}")),
            }
        }
        Ok(plan)
    }

    /// The plan named by the `GSIM_FAULT` environment variable, or the
    /// empty plan if unset. An unparsable spec is an immediate panic —
    /// a chaos run with a typo'd plan must not silently test nothing.
    pub fn from_env() -> FaultPlan {
        match std::env::var("GSIM_FAULT") {
            Ok(spec) => match FaultPlan::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => panic!("GSIM_FAULT: {e}"),
            },
            Err(_) => FaultPlan::default(),
        }
    }

    /// Renders the child-process slice of this plan as the value of
    /// the `GSIM_CHILD_FAULT` environment variable the emitted AoT
    /// simulator understands (`exit_at_cycle=N` / `stall_at_cycle=N`),
    /// or `None` if no child fault is planned. Spawners that pass
    /// `None` must *remove* the variable so a respawned child does not
    /// inherit the fault and die again.
    pub fn child_env(&self) -> Option<String> {
        let mut parts = Vec::new();
        if let Some(n) = self.kill_child_at_cycle {
            parts.push(format!("exit_at_cycle={n}"));
        }
        if let Some(n) = self.stall_child_at_cycle {
            parts.push(format!("stall_at_cycle={n}"));
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts.join(","))
        }
    }

    /// Renders the plan back into the spec grammar [`FaultPlan::parse`]
    /// accepts (round-trips exactly; the empty plan renders as `""`).
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.kill_child_at_cycle {
            parts.push(format!("kill_child_at_cycle={n}"));
        }
        if let Some(n) = self.stall_child_at_cycle {
            parts.push(format!("stall_child_at_cycle={n}"));
        }
        if self.torn_publish {
            parts.push("torn_publish".into());
        }
        if self.publish_io_error {
            parts.push("publish_io_error".into());
        }
        if self.short_writes {
            parts.push("short_writes".into());
        }
        if let Some(n) = self.reset_session_at_cmd {
            parts.push(format!("reset_session_at_cmd={n}"));
        }
        if let Some(n) = self.panic_session_at_cmd {
            parts.push(format!("panic_session_at_cmd={n}"));
        }
        parts.join(",")
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "(no faults)")
        } else {
            write!(f, "{}", self.render())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::FaultPlan;

    #[test]
    fn parse_render_round_trip() {
        let specs = [
            "",
            "kill_child_at_cycle=40",
            "stall_child_at_cycle=8,short_writes",
            "torn_publish,publish_io_error,reset_session_at_cmd=5,panic_session_at_cmd=3",
        ];
        for spec in specs {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan, "{spec}");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn child_env_covers_only_child_faults() {
        let plan = FaultPlan::parse("kill_child_at_cycle=7,torn_publish").unwrap();
        assert_eq!(plan.child_env().as_deref(), Some("exit_at_cycle=7"));
        assert_eq!(FaultPlan::default().child_env(), None);
        let both = FaultPlan::parse("kill_child_at_cycle=7,stall_child_at_cycle=9").unwrap();
        assert_eq!(
            both.child_env().as_deref(),
            Some("exit_at_cycle=7,stall_at_cycle=9")
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultPlan::parse("warp_core_breach").is_err());
        assert!(FaultPlan::parse("kill_child_at_cycle").is_err());
        assert!(FaultPlan::parse("kill_child_at_cycle=soon").is_err());
        assert!(FaultPlan::parse("torn_publish=maybe").is_err());
    }
}
