//! The backend-agnostic simulation session API.
//!
//! A [`Session`] is *one running simulation* of a compiled design,
//! independent of the execution substrate behind it: the in-process
//! interpreter engines ([`crate::Simulator`] implements the trait for
//! all four engine families) and the ahead-of-time compiled backend
//! (`gsim_codegen`'s persistent `AotSession`, which keeps one compiled
//! process resident and speaks the wire protocol below) expose exactly
//! the same surface, so testbenches, differential harnesses, and
//! benchmarks are written once against `&mut dyn Session` and run on
//! every backend.
//!
//! Every fallible operation returns the unified [`GsimError`] instead
//! of ad-hoc `String`s, so callers can match on failure classes
//! (unknown signal vs. backend loss) across backends.
//!
//! # AoT server wire protocol
//!
//! The compiled simulator the AoT backend emits has a `--serve` mode:
//! a line-oriented command loop on stdin/stdout that a driver process
//! (or a human) can speak. Requests are single lines of
//! whitespace-separated tokens; values travel as lowercase hex with no
//! `0x` prefix. Commands that *mutate* are silent on success (so a
//! driver can pipeline thousands of them without a round trip per
//! command) and print an `err`-class line on failure; commands that
//! *query* always print exactly one response line.
//!
//! | request | response | notes |
//! |---|---|---|
//! | `poke <name> <hex>` | silent / `err unknown-input <name>` | masked to the input's width |
//! | `step <n>` | silent | runs `n` clock cycles |
//! | `load <mem> <hex>...` | silent / `err unknown-memory <mem>` / `err mem-too-large <mem> <depth> <len>` | one `u64` entry per word, from address 0 |
//! | `peek <name>` | `val <width> <hex>` / `err unknown-signal <name>` | named outputs and inputs |
//! | `counters` | `counters <cycles> <supernode_evals> <node_evals> <value_changes>` | semantic cost counters |
//! | `list` | three lines: `inputs`, `signals`, `mems` (see below) | design introspection |
//! | `snapshot` | `snap <id>` | saves the full simulation state |
//! | `restore <id>` | silent / `err unknown-snapshot <id>` | rolls back to a saved state |
//! | `state` | `state <cycle> <blob>` | exports the full simulation state as one opaque ASCII token |
//! | `loadstate <blob>` | silent / `err protocol ...` | imports a blob from `state` (any process instance of the same artifact) |
//! | `sync` | `ok <cycle>` | barrier: all prior commands have been applied |
//! | `trace on [<name>...]` | `chg` burst (see below) / `err unknown-signal <name>` | starts streaming value changes; no names = every `list`-able signal |
//! | `trace off` | silent | stops streaming |
//! | `exit` | (process exits 0) | closing stdin has the same effect |
//!
//! While tracing is on, the server interleaves unsolicited
//! `chg <cycle> <name> <hex>` records into its output: one per traced
//! signal when tracing starts (the baseline burst, stamped with the
//! current cycle), then one per value change per cycle, always
//! *before* the response to the command that caused them. Clients
//! route any line starting `chg ` to their wave sink and treat the
//! remainder of the stream unchanged — this is what
//! [`Session::trace_start`] / [`Session::trace_stop`] speak on the
//! process-backed sessions, with `gsim_wave`'s `ChgRouter`
//! reassembling the records into a `WaveSink`.
//!
//! `list` is the introspection query: it prints exactly three lines —
//! `inputs <name>:<width> ...` (top-level inputs, declaration order),
//! `signals <name>:<width> ...` (every peekable name: outputs then
//! inputs, deduplicated), and `mems <name>:<depth>:<width> ...` —
//! so clients need no out-of-band knowledge of the design. The same
//! metadata is available in-process as [`Session::inputs`],
//! [`Session::signals`], and [`Session::memories`].
//!
//! A driver that wants errors promptly sends `sync` after a batch and
//! reads until the `ok`: any queued `err` lines arrive first, in
//! command order. `err` lines start with a machine-readable class
//! (`unknown-input`, `unknown-signal`, `unknown-memory`,
//! `mem-too-large`, `unknown-snapshot`, `protocol`, `io`, `timeout`,
//! `session-lost`, …) that maps onto the corresponding [`GsimError`]
//! variant; the mapping is implemented once, in both directions, by
//! [`GsimError::to_wire`] and [`GsimError::from_wire`].
//!
//! `state`/`loadstate` are the crash-recovery primitives: the exported
//! blob is a deterministic, whitespace-free serialization of every
//! state element (signal values, register shadows, memories, the
//! activation set, the cycle count, and the semantic counters), and
//! importing it into a *different* process running the same compiled
//! artifact reproduces the source simulation bit for bit. The
//! supervisor (`SupervisedSession`) checkpoints through these
//! commands and replays its command journal on top after a crash.
//!
//! # Service protocol (gsim-server)
//!
//! `gsim serve` (the multi-tenant simulation service in
//! `gsim_server`) speaks a superset of the same protocol over a Unix
//! or TCP socket. Three commands establish and manage a session
//! before/alongside the simulation commands above:
//!
//! | request | response | notes |
//! |---|---|---|
//! | `design <nbytes> [aot\|interp\|jit]` | `ready <key> <hit\|miss\|interp\|jit\|fallback> <ms>` | the next `nbytes` bytes are FIRRTL source; `aot` goes through the artifact cache, `interp`/`jit` compile in-process (`jit` = the threaded-code backend, AoT-class dispatch with no compiler in the loop) |
//! | `explore <n> <nbytes>` | `branch <i> <cycle> <name>=<hex>... <counters...>` × n, then `ok <cycle>` | the next `nbytes` bytes are a scenario in the stimulus text format; the server forks the open session's current state and runs `n` `perturb(i)` branches, streaming one `branch` line per result (index order) |
//! | `stats` | `stats sessions <n> active <n> hits <n> misses <n> compiles <n> evictions <n> panics <n> fallbacks <n>` | service-level counters |
//! | `shutdown` | `ok <cycle>` | stops the whole server (test/admin facility) |
//!
//! `ready … fallback` is graceful degradation: an `aot` request whose
//! compile failed (rustc missing, build error, corrupt artifact) is
//! served by the in-process `jit` backend instead of erroring the
//! tenant; the session speaks the identical protocol. `panics` counts
//! session threads that died to a caught panic (the tenant got a typed
//! `err backend` line); `fallbacks` counts degraded `aot` requests.

use crate::counters::Counters;
use crate::scenario::Scenario;
use crate::CompileError;
use gsim_value::Value;

/// Unified error type for the whole simulation stack.
///
/// Replaces the `Result<_, String>` sprawl across the facade, the
/// interpreter, and the AoT backend: every backend maps its failures
/// onto these variants, so callers can distinguish "you asked for a
/// signal that does not exist" from "the backend process died" without
/// string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GsimError {
    /// The graph could not be compiled for simulation.
    Compile(CompileError),
    /// The FIRRTL front end rejected the source text.
    Parse(String),
    /// An invalid option combination (e.g. an engine choice the
    /// requested build path cannot honour).
    Config(String),
    /// No node with this name exists in the design.
    UnknownSignal(String),
    /// The named node exists but is not a top-level input.
    NotAnInput(String),
    /// No memory with this name exists in the design.
    UnknownMemory(String),
    /// A memory image larger than the memory it targets.
    MemImageTooLarge {
        /// The memory's name.
        name: String,
        /// The memory's depth in entries.
        depth: u64,
        /// The oversized image's length in entries.
        len: usize,
    },
    /// A [`SnapshotId`] that this session never issued (or that did
    /// not survive a backend restart).
    UnknownSnapshot(u64),
    /// An I/O failure on the transport layer: a socket or pipe to a
    /// backend process or simulation server was lost, timed out, or
    /// refused. (Carries the rendered `std::io::Error`, which is
    /// neither `Clone` nor `PartialEq`.)
    Io(String),
    /// Malformed wire traffic: a request or response that does not
    /// parse under the session protocol.
    Protocol(String),
    /// The execution backend failed: toolchain errors, a dead or
    /// unresponsive compiled-simulator process, or an internal error a
    /// server reported without a more specific class.
    Backend(String),
    /// A backend operation exceeded its deadline: the process or peer
    /// is still attached but stopped responding (stalled child, wedged
    /// socket). The session is poisoned — a supervisor should respawn
    /// and replay rather than retry on the same transport.
    Timeout(String),
    /// The backend process or connection behind this session is gone:
    /// the AoT child exited (crash, OOM-kill, `kill -9`) or the server
    /// dropped the connection. Carries what is known about the death
    /// (exit status, signal, or the transport error).
    SessionLost(String),
    /// The operation is not supported by this backend: a capability
    /// gap (e.g. [`Session::clone_at_snapshot`] on a backend that
    /// cannot fork), not a failure. Non-fatal — the session remains
    /// usable; callers fall back to a slower path.
    Unsupported(String),
}

impl std::fmt::Display for GsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GsimError::Compile(e) => write!(f, "{e}"),
            GsimError::Parse(m) => write!(f, "parse error: {m}"),
            GsimError::Config(m) => write!(f, "invalid configuration: {m}"),
            GsimError::UnknownSignal(n) => write!(f, "no signal named {n:?}"),
            GsimError::NotAnInput(n) => write!(f, "{n:?} is not an input"),
            GsimError::UnknownMemory(n) => write!(f, "no memory named {n:?}"),
            GsimError::MemImageTooLarge { name, depth, len } => write!(
                f,
                "image of {len} entries exceeds depth {depth} of memory {name:?}"
            ),
            GsimError::UnknownSnapshot(id) => write!(f, "no snapshot with id {id}"),
            GsimError::Io(m) => write!(f, "i/o failure: {m}"),
            GsimError::Protocol(m) => write!(f, "protocol violation: {m}"),
            GsimError::Backend(m) => write!(f, "backend failure: {m}"),
            GsimError::Timeout(m) => write!(f, "operation timed out: {m}"),
            GsimError::SessionLost(m) => write!(f, "session lost: {m}"),
            GsimError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl From<std::io::Error> for GsimError {
    fn from(e: std::io::Error) -> Self {
        GsimError::Io(e.to_string())
    }
}

impl GsimError {
    /// The machine-readable wire class of this error — the first token
    /// after `err` on the wire.
    pub fn wire_class(&self) -> &'static str {
        match self {
            GsimError::Compile(_) => "compile",
            GsimError::Parse(_) => "parse",
            GsimError::Config(_) => "config",
            GsimError::UnknownSignal(_) => "unknown-signal",
            GsimError::NotAnInput(_) => "unknown-input",
            GsimError::UnknownMemory(_) => "unknown-memory",
            GsimError::MemImageTooLarge { .. } => "mem-too-large",
            GsimError::UnknownSnapshot(_) => "unknown-snapshot",
            GsimError::Io(_) => "io",
            GsimError::Protocol(_) => "protocol",
            GsimError::Backend(_) => "backend",
            GsimError::Timeout(_) => "timeout",
            GsimError::SessionLost(_) => "session-lost",
            GsimError::Unsupported(_) => "unsupported",
        }
    }

    /// Renders this error as a protocol `err` line (without the
    /// trailing newline): `err <class> <payload...>`. The inverse of
    /// [`GsimError::from_wire`]; every server-side component (the
    /// emitted binary's `--serve` loop mirrors this table, and
    /// `gsim-server` calls it directly) encodes errors through this
    /// one mapping.
    pub fn to_wire(&self) -> String {
        match self {
            GsimError::Compile(e) => format!("err compile {e}"),
            GsimError::Parse(m) => format!("err parse {m}"),
            GsimError::Config(m) => format!("err config {m}"),
            GsimError::UnknownSignal(n) => format!("err unknown-signal {n}"),
            GsimError::NotAnInput(n) => format!("err unknown-input {n}"),
            GsimError::UnknownMemory(n) => format!("err unknown-memory {n}"),
            GsimError::MemImageTooLarge { name, depth, len } => {
                format!("err mem-too-large {name} {depth} {len}")
            }
            GsimError::UnknownSnapshot(id) => format!("err unknown-snapshot {id}"),
            GsimError::Io(m) => format!("err io {m}"),
            GsimError::Protocol(m) => format!("err protocol {m}"),
            GsimError::Backend(m) => format!("err backend {m}"),
            GsimError::Timeout(m) => format!("err timeout {m}"),
            GsimError::SessionLost(m) => format!("err session-lost {m}"),
            GsimError::Unsupported(m) => format!("err unsupported {m}"),
        }
    }

    /// Decodes a protocol `err` line (with or without the leading
    /// `err ` token) back into the typed error. Unknown classes fall
    /// back to [`GsimError::Backend`] so a newer server never crashes
    /// an older client. Free-text payloads round-trip verbatim; the
    /// structured [`GsimError::Compile`] payload crosses the wire as
    /// its rendered message (re-wrapped as an invalid-graph compile
    /// error on decode).
    pub fn from_wire(line: &str) -> GsimError {
        let rest = line.strip_prefix("err ").unwrap_or(line);
        let (class, payload) = match rest.split_once(char::is_whitespace) {
            Some((c, p)) => (c, p.trim()),
            None => (rest.trim(), ""),
        };
        let mut it = payload.split_whitespace();
        let first = || payload.split_whitespace().next().unwrap_or("").to_string();
        match class {
            "compile" => GsimError::Compile(CompileError::InvalidGraph(payload.to_string())),
            "parse" => GsimError::Parse(payload.to_string()),
            "config" => GsimError::Config(payload.to_string()),
            "unknown-signal" => GsimError::UnknownSignal(first()),
            "unknown-input" => GsimError::NotAnInput(first()),
            "unknown-memory" => GsimError::UnknownMemory(first()),
            "mem-too-large" => GsimError::MemImageTooLarge {
                name: it.next().unwrap_or("").to_string(),
                depth: it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
                len: it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            },
            "unknown-snapshot" => GsimError::UnknownSnapshot(first().parse().unwrap_or(0)),
            "io" => GsimError::Io(payload.to_string()),
            "protocol" => GsimError::Protocol(payload.to_string()),
            "backend" => GsimError::Backend(payload.to_string()),
            "timeout" => GsimError::Timeout(payload.to_string()),
            "session-lost" => GsimError::SessionLost(payload.to_string()),
            "unsupported" => GsimError::Unsupported(payload.to_string()),
            _ => GsimError::Backend(format!("server error: {rest}")),
        }
    }

    /// `true` for errors meaning the transport or backend itself is
    /// lost (as opposed to a bad request): [`GsimError::Io`],
    /// [`GsimError::Backend`], [`GsimError::Timeout`], and
    /// [`GsimError::SessionLost`]. Pipelining drivers abort on these
    /// and keep going on everything else; supervisors treat them as
    /// the trigger for respawn-and-replay recovery.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            GsimError::Io(_)
                | GsimError::Backend(_)
                | GsimError::Timeout(_)
                | GsimError::SessionLost(_)
        )
    }
}

impl std::error::Error for GsimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GsimError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for GsimError {
    fn from(e: CompileError) -> Self {
        GsimError::Compile(e)
    }
}

/// Handle to a saved simulation state, returned by
/// [`Session::snapshot`] and consumed by [`Session::restore`].
///
/// Ids are only meaningful on the session that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapshotId(u64);

impl SnapshotId {
    /// Wraps a backend-assigned raw id (for `Session` implementors).
    pub fn from_raw(raw: u64) -> SnapshotId {
        SnapshotId(raw)
    }

    /// The backend-assigned raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Name + width metadata for one signal, as reported by
/// [`Session::inputs`] and [`Session::signals`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalInfo {
    /// The signal's design-level name (the string `poke`/`peek` take).
    pub name: String,
    /// Declared width in bits.
    pub width: u32,
}

/// Name + shape metadata for one memory, as reported by
/// [`Session::memories`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryInfo {
    /// The memory's name (the string `load_mem` takes).
    pub name: String,
    /// Depth in entries.
    pub depth: u64,
    /// Entry width in bits.
    pub width: u32,
}

/// One cycle's worth of by-name input pokes for
/// [`Session::run_driven`].
///
/// The name-keyed sibling of the interpreter's handle-keyed
/// [`crate::InputFrame`]: sessions cannot hand out engine-internal
/// handles (the AoT backend's inputs live in another process), so
/// frame stimulus addresses inputs by port name. Values are masked to
/// the input's width by the backend.
#[derive(Debug, Default)]
pub struct SessionFrame {
    pokes: Vec<(String, u64)>,
}

impl SessionFrame {
    /// Schedules `v` to be driven onto input `name` this cycle.
    pub fn set(&mut self, name: &str, v: u64) {
        self.pokes.push((name.to_string(), v));
    }

    /// The scheduled pokes, in insertion order.
    pub fn pokes(&self) -> &[(String, u64)] {
        &self.pokes
    }

    /// Clears the frame for reuse (keeps the allocation).
    pub fn clear(&mut self) {
        self.pokes.clear();
    }
}

/// One running simulation, independent of the execution backend.
///
/// The trait is object-safe: harnesses hold `Box<dyn Session>` (or
/// `&mut dyn Session`) and drive the interpreter engines and the
/// persistent AoT process identically. All implementations are
/// bit-identical in observable behaviour — pinned by the differential
/// matrix in `tests/`, which runs every backend against the reference
/// interpreter cycle by cycle through this trait.
pub trait Session {
    /// A short human-readable backend tag (e.g. `"interp/essential"`,
    /// `"aot"`), for labels in harness assertions and reports.
    fn backend(&self) -> &'static str;

    /// Completed simulation cycles.
    fn cycle(&self) -> u64;

    /// Drives a top-level input. The value is zero-extended or
    /// truncated to the input's declared width.
    ///
    /// # Errors
    ///
    /// [`GsimError::UnknownSignal`] / [`GsimError::NotAnInput`] for bad
    /// names; [`GsimError::Backend`] if the backend is lost.
    fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError>;

    /// Reads a named signal's current value (typed, exact width — not
    /// a hex string).
    ///
    /// # Errors
    ///
    /// [`GsimError::UnknownSignal`] for bad names;
    /// [`GsimError::Backend`] if the backend is lost.
    fn peek(&mut self, name: &str) -> Result<Value, GsimError>;

    /// Loads a memory image (entry `i` at address `i`, one `u64` per
    /// entry) before or between runs.
    ///
    /// # Errors
    ///
    /// [`GsimError::UnknownMemory`] / [`GsimError::MemImageTooLarge`]
    /// for bad images; [`GsimError::Backend`] if the backend is lost.
    fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError>;

    /// Advances `n` clock cycles with the inputs held at their current
    /// values.
    ///
    /// # Errors
    ///
    /// [`GsimError::Backend`] if the backend is lost.
    fn step(&mut self, n: u64) -> Result<(), GsimError>;

    /// Advances `n` clock cycles, calling `drive` with the cycle
    /// number before each one to fill a [`SessionFrame`] of by-name
    /// pokes — the frame-stepping fast path: the interpreter's
    /// multithreaded engines keep their worker team alive across all
    /// `n` cycles, and the AoT session pipelines the whole run into
    /// the compiled process with a bounded number of wire round trips.
    ///
    /// Deprecated as the *public* stimulus surface: closures cannot be
    /// serialized, compared, perturbed, or sent over the wire, so
    /// harnesses should describe stimulus as a [`Scenario`] and call
    /// [`Session::run_scenario`] (which routes through this fast path
    /// internally). The default implementation is a portable
    /// poke-per-cycle shim, so `Session` implementors no longer need
    /// to provide it — backends with a cheaper batched path (the
    /// interpreter's persistent worker teams, the AoT session's
    /// pipelining) still override it.
    ///
    /// # Errors
    ///
    /// Propagates poke errors ([`GsimError::UnknownSignal`] /
    /// [`GsimError::NotAnInput`]): the run still completes all `n`
    /// cycles on every backend, stimulus stops being driven at
    /// (interpreter) or shortly after (AoT: within the pipelined
    /// chunk already in flight) the first error, and the first error
    /// is reported when the call returns. [`GsimError::Backend`]
    /// aborts immediately — the backend itself is lost.
    #[deprecated(
        since = "0.9.0",
        note = "describe stimulus as a `Scenario` and call `run_scenario`"
    )]
    fn run_driven(
        &mut self,
        n: u64,
        drive: &mut dyn FnMut(u64, &mut SessionFrame),
    ) -> Result<(), GsimError> {
        let start = self.cycle();
        let mut frame = SessionFrame::default();
        let mut first_err: Option<GsimError> = None;
        for k in 0..n {
            if first_err.is_none() {
                frame.clear();
                drive(start + k, &mut frame);
                for (name, v) in frame.pokes() {
                    match self.poke(name, Value::from_u64(*v, 64)) {
                        Ok(()) => {}
                        Err(e) if e.is_fatal() => return Err(e),
                        Err(e) => {
                            first_err = Some(e);
                            break;
                        }
                    }
                }
            }
            self.step(1)?;
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Applies a [`Scenario`] to this session: memory loads first,
    /// then every frame through the backend's driven-run fast path.
    /// The session is left at `cycle() + scenario.cycles()`. This is
    /// the one stimulus entry point shared by the CLI, the bench
    /// harness, the exploration engine, and the wire — the typed
    /// replacement for ad-hoc `run_driven` closures.
    ///
    /// # Errors
    ///
    /// As [`Session::run_driven`]: load errors
    /// ([`GsimError::UnknownMemory`] /
    /// [`GsimError::MemImageTooLarge`]) abort before any cycle runs;
    /// poke errors still complete the run and are reported at the
    /// end; fatal errors abort immediately.
    fn run_scenario(&mut self, scenario: &Scenario) -> Result<(), GsimError> {
        for (mem, image) in &scenario.loads {
            self.load_mem(mem, image)?;
        }
        let n = scenario.cycles();
        if n == 0 {
            return Ok(());
        }
        let start = self.cycle();
        let frames = &scenario.frames;
        #[allow(deprecated)]
        self.run_driven(n, &mut |cycle, frame| {
            if let Some(pokes) = frames.get((cycle - start) as usize) {
                for (name, v) in pokes {
                    frame.set(name, *v);
                }
            }
        })
    }

    /// Forks this session: returns a *new* session of the same
    /// compiled design whose simulation state (signals, registers,
    /// memories, cycle count, counters) equals this session's state
    /// at the time of the call, and which then evolves independently.
    /// This is the primitive behind [`crate::Explorer`]'s
    /// snapshot-fork scenario fan-out.
    ///
    /// The default implementation cannot fork (constructing a fresh
    /// backend instance needs a factory the trait does not carry) and
    /// returns [`GsimError::Unsupported`]; in-process backends
    /// override it with a cheap copy-on-write clone, and process
    /// backends override it by spawning a sibling process and
    /// importing an [`Session::export_state`] blob.
    ///
    /// # Errors
    ///
    /// [`GsimError::Unsupported`] when this backend cannot fork
    /// (callers fall back to opening a session via their own factory
    /// and replaying); transport-class errors when a process backend
    /// fails mid-fork.
    fn clone_at_snapshot(&mut self) -> Result<Box<dyn Session + Send>, GsimError> {
        Err(GsimError::Unsupported(format!(
            "backend {:?} cannot fork a running session",
            self.backend()
        )))
    }

    /// The semantic cost counters accumulated so far. Backends without
    /// a given counter report it as zero; `cycles`, `node_evals`,
    /// `supernode_evals`, and `value_changes` are maintained by every
    /// backend.
    ///
    /// # Errors
    ///
    /// [`GsimError::Backend`] if the backend is lost.
    fn counters(&mut self) -> Result<Counters, GsimError>;

    /// Saves the complete simulation state (signals, registers,
    /// memories, activation set, cycle count, counters) and returns a
    /// handle for [`Session::restore`].
    ///
    /// # Errors
    ///
    /// [`GsimError::Backend`] if the backend is lost.
    fn snapshot(&mut self) -> Result<SnapshotId, GsimError>;

    /// Rolls the simulation back to a state saved by
    /// [`Session::snapshot`]. Replay after a restore is bit-identical
    /// to the original run under the same stimulus.
    ///
    /// # Errors
    ///
    /// [`GsimError::UnknownSnapshot`] for ids this session never
    /// issued; [`GsimError::Backend`] if the backend is lost.
    fn restore(&mut self, id: SnapshotId) -> Result<(), GsimError>;

    /// The design's top-level inputs (declaration order): the names
    /// [`Session::poke`] accepts. Identical across backends for the
    /// same design, so clients need no out-of-band knowledge.
    ///
    /// # Errors
    ///
    /// [`GsimError::Backend`] / [`GsimError::Io`] if the backend is
    /// lost (remote backends answer this over the wire).
    fn inputs(&mut self) -> Result<Vec<SignalInfo>, GsimError>;

    /// Every name [`Session::peek`] is guaranteed to resolve on *all*
    /// backends: named outputs, then named inputs, deduplicated.
    /// (In-process backends may resolve additional internal names;
    /// this list is the portable surface.)
    ///
    /// # Errors
    ///
    /// As [`Session::inputs`].
    fn signals(&mut self) -> Result<Vec<SignalInfo>, GsimError>;

    /// The design's memories (declaration order): the names
    /// [`Session::load_mem`] accepts, with their shapes.
    ///
    /// # Errors
    ///
    /// As [`Session::inputs`].
    fn memories(&mut self) -> Result<Vec<MemoryInfo>, GsimError>;

    /// Exports the complete simulation state as an opaque,
    /// self-contained blob — the crash-recovery primitive behind
    /// [`crate::SupervisedSession`]. Unlike [`Session::snapshot`]
    /// (whose id lives and dies with the backend instance), the blob
    /// survives the session: feeding it to [`Session::import_state`]
    /// on a *fresh* session of the same design reproduces this
    /// simulation bit for bit, including cycle count and counters.
    ///
    /// The blob is guaranteed to be a single ASCII token (no
    /// whitespace or newlines), so it can travel on the line-oriented
    /// wire protocols verbatim.
    ///
    /// Returns `Ok(None)` on backends that do not support state
    /// externalization (the default); such sessions can still be
    /// supervised, but recovery replays the journal from cycle 0.
    ///
    /// # Errors
    ///
    /// [`GsimError::Backend`] / [`GsimError::SessionLost`] if the
    /// backend is lost.
    fn export_state(&mut self) -> Result<Option<Vec<u8>>, GsimError> {
        Ok(None)
    }

    /// Overwrites the complete simulation state from a blob produced
    /// by [`Session::export_state`] on any session of the same
    /// compiled design.
    ///
    /// # Errors
    ///
    /// [`GsimError::Config`] on backends without state support (the
    /// default); [`GsimError::Protocol`] for a blob that does not
    /// match this design; [`GsimError::Backend`] /
    /// [`GsimError::SessionLost`] if the backend is lost.
    fn import_state(&mut self, state: &[u8]) -> Result<(), GsimError> {
        let _ = state;
        Err(GsimError::Config(
            "this backend does not support state import".into(),
        ))
    }

    /// Starts change-driven waveform capture into `sink`: the sink
    /// receives a header and a baseline snapshot at the current
    /// cycle, then one change record per traced signal per cycle in
    /// which its value changed, stamped with the cycle *after* which
    /// the new value is observable (the same value [`Session::peek`]
    /// would read at that point). `signals` selects a subset of
    /// [`Session::signals`] to trace; `None` traces all of them.
    /// Capture runs until [`Session::trace_stop`] and is
    /// change-driven and backend-agnostic, so two peek-equivalent
    /// backends produce canonically identical waves (`gsim wavediff`
    /// pins exactly this).
    ///
    /// At most one trace can be active per session. Sink write
    /// failures do not fail the simulation; they are latched and
    /// reported by [`Session::trace_stop`].
    ///
    /// # Errors
    ///
    /// [`GsimError::UnknownSignal`] for a subset name that is not in
    /// [`Session::signals`]; [`GsimError::Config`] if a trace is
    /// already active; [`GsimError::Unsupported`] on backends without
    /// capture (the default — callers fall back to peek-based
    /// observation); transport-class errors on process backends.
    fn trace_start(
        &mut self,
        signals: Option<&[String]>,
        sink: Box<dyn gsim_wave::WaveSink>,
    ) -> Result<(), GsimError> {
        let _ = (signals, sink);
        Err(GsimError::Unsupported(format!(
            "backend {:?} cannot capture waveforms",
            self.backend()
        )))
    }

    /// Stops waveform capture and finishes the sink (flushing file
    /// sinks), surfacing the first sink error latched during capture.
    ///
    /// # Errors
    ///
    /// [`GsimError::Config`] if no trace is active; [`GsimError::Io`]
    /// for a latched or final sink failure; [`GsimError::Unsupported`]
    /// on backends without capture (the default).
    fn trace_stop(&mut self) -> Result<(), GsimError> {
        Err(GsimError::Unsupported(format!(
            "backend {:?} cannot capture waveforms",
            self.backend()
        )))
    }

    /// [`Session::poke`] from a `u64`.
    ///
    /// # Errors
    ///
    /// As [`Session::poke`].
    fn poke_u64(&mut self, name: &str, v: u64) -> Result<(), GsimError> {
        self.poke(name, Value::from_u64(v, 64))
    }

    /// [`Session::peek`] as a `u64` (`None` if the value is wider).
    ///
    /// # Errors
    ///
    /// As [`Session::peek`].
    fn peek_u64(&mut self, name: &str) -> Result<Option<u64>, GsimError> {
        Ok(self.peek(name)?.to_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::GsimError;
    use crate::CompileError;

    /// One representative of every variant — the full taxonomy.
    fn taxonomy() -> Vec<GsimError> {
        vec![
            GsimError::Compile(CompileError::InvalidGraph("bad graph".into())),
            GsimError::Parse("expected circuit".into()),
            GsimError::Config("engine mismatch".into()),
            GsimError::UnknownSignal("foo".into()),
            GsimError::NotAnInput("out".into()),
            GsimError::UnknownMemory("ram".into()),
            GsimError::MemImageTooLarge {
                name: "ram".into(),
                depth: 16,
                len: 32,
            },
            GsimError::UnknownSnapshot(7),
            GsimError::Io("broken pipe".into()),
            GsimError::Protocol("bad token".into()),
            GsimError::Backend("rustc exploded".into()),
            GsimError::Timeout("sync exceeded 250ms".into()),
            GsimError::SessionLost("child exited: signal 9".into()),
            GsimError::Unsupported("this backend cannot fork".into()),
        ]
    }

    #[test]
    fn wire_round_trip_covers_every_variant() {
        for err in taxonomy() {
            let line = err.to_wire();
            assert!(line.starts_with("err "), "wire line {line:?}");
            let back = GsimError::from_wire(&line);
            // `Compile` crosses the wire as its rendered message and
            // comes back re-wrapped; everything else is exact.
            match (&err, &back) {
                (GsimError::Compile(_), GsimError::Compile(_)) => {}
                _ => assert_eq!(err, back, "round trip of {line:?}"),
            }
            assert_eq!(err.wire_class(), back.wire_class());
            assert_eq!(err.is_fatal(), back.is_fatal());
            // Decoding also works without the `err ` prefix.
            let stripped = GsimError::from_wire(line.strip_prefix("err ").unwrap());
            assert_eq!(back.wire_class(), stripped.wire_class());
        }
    }

    #[test]
    fn fatality_classification() {
        for err in taxonomy() {
            let fatal = matches!(
                err,
                GsimError::Io(_)
                    | GsimError::Backend(_)
                    | GsimError::Timeout(_)
                    | GsimError::SessionLost(_)
            );
            assert_eq!(err.is_fatal(), fatal, "{err}");
        }
    }

    #[test]
    fn unknown_wire_class_degrades_to_backend() {
        let e = GsimError::from_wire("err quantum-flux something odd");
        assert!(matches!(e, GsimError::Backend(_)));
        assert!(e.is_fatal());
    }

    #[test]
    fn wire_classes_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for err in taxonomy() {
            assert!(
                seen.insert(err.wire_class()),
                "duplicate {}",
                err.wire_class()
            );
        }
    }
}
