//! The typed stimulus value: one description of *what to drive*,
//! shared by every way of driving it.
//!
//! Before this module the repo had three ad-hoc stimulus
//! representations — the text files the emitted AoT binary parses,
//! `run_driven` closures in harness code, and the bench harness's
//! per-cycle frame vectors. A [`Scenario`] subsumes all three: memory
//! images applied before cycle 0 plus a sequence of per-cycle poke
//! frames, with builder combinators ([`Scenario::hold`],
//! [`Scenario::repeat`]), a deterministic [`Scenario::perturb`] for
//! branch corpora, and a [`Scenario::parse`] / [`Scenario::render`]
//! round trip with the existing `!load` / `name=hex` text format — so
//! the CLI, the bench harness, the tests, and the wire all speak the
//! same value.
//!
//! # Text format
//!
//! ```text
//! # comment
//! !load imem 13 00000513
//! rst=1 in0=ff
//! rst=0
//! ```
//!
//! `#` lines are comments; `!load <mem> <hex>...` loads one `u64`
//! image word per token starting at address 0; every other line
//! (including an empty one) is one cycle's frame of `name=hex` pokes.
//! This is byte-compatible with the format the emitted AoT binary's
//! stimulus parser accepts.

use crate::session::{GsimError, Session};

/// A complete, backend-independent stimulus description: memory
/// images plus timed input frames.
///
/// Cycles beyond the last frame run with inputs held at their final
/// values (every backend implements hold semantics identically), so a
/// scenario that drives `k` frames can still be run for `n > k`
/// cycles via [`Scenario::run_for`] / [`Session::run_scenario`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scenario {
    /// Memory images applied before cycle 0 (one `u64` per entry,
    /// entry `i` at address `i`).
    pub loads: Vec<(String, Vec<u64>)>,
    /// Per-cycle input pokes, frame `c` driven before cycle `c`.
    /// Values are masked to the input's declared width by the backend.
    pub frames: Vec<Vec<(String, u64)>>,
}

/// splitmix64 — the same tiny deterministic mixer the test harness
/// uses for stimulus words; good enough to decorrelate branch
/// corpora, dependency-free, and stable across platforms.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Scenario {
    /// An empty scenario (no loads, no frames).
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Adds a memory image to load before cycle 0.
    pub fn load(mut self, mem: &str, image: Vec<u64>) -> Scenario {
        self.loads.push((mem.to_string(), image));
        self
    }

    /// Appends one frame of `(input, value)` pokes.
    pub fn frame(mut self, pokes: &[(&str, u64)]) -> Scenario {
        self.frames
            .push(pokes.iter().map(|&(n, v)| (n.to_string(), v)).collect());
        self
    }

    /// Appends `n` empty frames: the inputs hold their current values
    /// for `n` cycles.
    pub fn hold(mut self, n: u64) -> Scenario {
        for _ in 0..n {
            self.frames.push(Vec::new());
        }
        self
    }

    /// Appends `k` copies of the last frame (no-op on an empty
    /// scenario). `repeat(k)` after a `frame(...)` drives the same
    /// pokes for `k` further cycles.
    pub fn repeat(mut self, k: u64) -> Scenario {
        if let Some(last) = self.frames.last().cloned() {
            for _ in 0..k {
                self.frames.push(last.clone());
            }
        }
        self
    }

    /// Number of frames (the cycle count [`Scenario::run_for`] drives
    /// stimulus for; runs may be longer, with inputs held).
    pub fn cycles(&self) -> u64 {
        self.frames.len() as u64
    }

    /// A deterministic variant of this scenario: every poke value is
    /// XOR-perturbed by a splitmix64 stream keyed on `seed` and the
    /// poke's position. Seed 0 returns the scenario unchanged, so
    /// branch 0 of a corpus is always the base scenario. Loads and
    /// frame *structure* (which inputs are driven on which cycles)
    /// are preserved — only values change — and backends mask pokes
    /// to the input width, so perturbed corpora stay well-formed on
    /// every backend.
    pub fn perturb(&self, seed: u64) -> Scenario {
        if seed == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        for (c, frame) in out.frames.iter_mut().enumerate() {
            for (i, (_, v)) in frame.iter_mut().enumerate() {
                *v ^= splitmix64(seed ^ ((c as u64) << 20) ^ (i as u64));
            }
        }
        out
    }

    /// Applies this scenario to a session: loads, then the frames via
    /// the session's driven-run fast path, then holds inputs for any
    /// remaining cycles up to `n`. This is [`Session::run_scenario`]
    /// with an explicit total cycle count.
    ///
    /// # Errors
    ///
    /// As [`Session::run_scenario`].
    pub fn run_for(&self, session: &mut dyn Session, n: u64) -> Result<(), GsimError> {
        for (mem, image) in &self.loads {
            session.load_mem(mem, image)?;
        }
        let driven = self.cycles().min(n);
        if driven > 0 {
            let start = session.cycle();
            let frames = &self.frames;
            #[allow(deprecated)]
            session.run_driven(driven, &mut |cycle, frame| {
                if let Some(pokes) = frames.get((cycle - start) as usize) {
                    for (name, v) in pokes {
                        frame.set(name, *v);
                    }
                }
            })?;
        }
        if n > driven {
            session.step(n - driven)?;
        }
        Ok(())
    }

    /// Renders the scenario into the stimulus text format (the exact
    /// format [`Scenario::parse`] and the emitted AoT binary accept).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (mem, image) in &self.loads {
            s.push_str("!load ");
            s.push_str(mem);
            for w in image {
                s.push_str(&format!(" {w:x}"));
            }
            s.push('\n');
        }
        for frame in &self.frames {
            let mut first = true;
            for (name, v) in frame {
                if !first {
                    s.push(' ');
                }
                first = false;
                s.push_str(&format!("{name}={v:x}"));
            }
            s.push('\n');
        }
        s
    }

    /// Parses the stimulus text format back into a scenario.
    /// `parse(render())` round-trips exactly; comments are dropped.
    ///
    /// # Errors
    ///
    /// [`GsimError::Parse`] with a line-numbered message for bad hex,
    /// a missing `!load` memory name, a token without `=`, or a poke
    /// value wider than 64 bits (session pokes are `u64`; wider
    /// inputs are driven via [`Session::poke`] directly).
    pub fn parse(text: &str) -> Result<Scenario, GsimError> {
        let mut sc = Scenario::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.starts_with('#') {
                continue;
            }
            if line == "!load" {
                // Without this exact match a bare `!load` falls
                // through to the frame branch and reports a
                // misleading `expected name=hex` at the right line
                // but for the wrong reason.
                return Err(GsimError::Parse(format!(
                    "line {}: !load needs a memory name",
                    ln + 1
                )));
            }
            if let Some(rest) = line.strip_prefix("!load ") {
                let mut it = rest.split_whitespace();
                let mem = it.next().ok_or_else(|| {
                    GsimError::Parse(format!("line {}: !load needs a memory name", ln + 1))
                })?;
                let mut image = Vec::new();
                for tok in it {
                    image.push(parse_hex64(tok).ok_or_else(|| {
                        GsimError::Parse(format!(
                            "line {}: bad or oversized image word {tok:?}",
                            ln + 1
                        ))
                    })?);
                }
                sc.loads.push((mem.to_string(), image));
                continue;
            }
            let mut frame = Vec::new();
            for tok in line.split_whitespace() {
                let (name, val) = tok.split_once('=').ok_or_else(|| {
                    GsimError::Parse(format!("line {}: expected name=hex, got {tok:?}", ln + 1))
                })?;
                let v = parse_hex64(val).ok_or_else(|| {
                    GsimError::Parse(format!("line {}: bad or oversized value {val:?}", ln + 1))
                })?;
                frame.push((name.to_string(), v));
            }
            sc.frames.push(frame);
        }
        Ok(sc)
    }
}

/// Parses hex into a `u64`; `None` on invalid digits, an empty
/// token, or a value that does not fit 64 bits.
fn parse_hex64(s: &str) -> Option<u64> {
    if s.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for c in s.chars() {
        let d = c.to_digit(16)? as u64;
        if v >> 60 != 0 {
            return None;
        }
        v = (v << 4) | d;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario::new()
            .load("imem", vec![0x13, 0x00000513, 0xffff_ffff_ffff_ffff])
            .frame(&[("rst", 1), ("in0", 0xff)])
            .frame(&[("rst", 0)])
            .hold(2)
            .repeat(1)
    }

    #[test]
    fn combinators_build_expected_frames() {
        let sc = sample();
        assert_eq!(sc.cycles(), 5);
        assert_eq!(sc.frames[0].len(), 2);
        assert_eq!(sc.frames[2], Vec::new());
        // repeat(1) copies the last frame (an empty hold frame).
        assert_eq!(sc.frames[4], sc.frames[3]);
        let sc2 = Scenario::new().frame(&[("a", 7)]).repeat(2);
        assert_eq!(sc2.cycles(), 3);
        assert!(sc2.frames.iter().all(|f| f == &sc2.frames[0]));
    }

    #[test]
    fn render_parse_round_trip() {
        let sc = sample();
        let text = sc.render();
        let back = Scenario::parse(&text).unwrap();
        assert_eq!(sc, back);
        // Comments and surrounding whitespace are tolerated.
        let commented = format!("# header\n{text}");
        assert_eq!(Scenario::parse(&commented).unwrap(), sc);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let e = Scenario::parse("a=1\nbad token\n").unwrap_err();
        assert!(
            matches!(&e, GsimError::Parse(m) if m.contains("line 2")),
            "{e}"
        );
        let e = Scenario::parse("!load\n").unwrap_err();
        assert!(matches!(e, GsimError::Parse(_)));
        let e = Scenario::parse("a=1ffffffffffffffff\n").unwrap_err();
        assert!(
            matches!(&e, GsimError::Parse(m) if m.contains("oversized")),
            "{e}"
        );
    }

    /// A bare `!load` used to fall through to the frame branch and
    /// report `expected name=hex` — the error must instead name the
    /// real problem, pinned to the offending line, and survive a
    /// wire round trip.
    #[test]
    fn bare_load_reports_its_line_and_cause() {
        let e = Scenario::parse("a=1\n!load\n").unwrap_err();
        let GsimError::Parse(m) = &e else {
            panic!("expected Parse, got {e}");
        };
        assert_eq!(m, "line 2: !load needs a memory name");
        let rt = GsimError::from_wire(&e.to_wire());
        assert_eq!(rt.to_string(), e.to_string(), "wire round trip");
    }

    #[test]
    fn empty_lines_are_hold_frames() {
        let sc = Scenario::parse("rst=1\n\nrst=0\n").unwrap();
        assert_eq!(sc.cycles(), 3);
        assert!(sc.frames[1].is_empty());
    }

    #[test]
    fn perturb_is_deterministic_and_structure_preserving() {
        let sc = sample();
        assert_eq!(sc.perturb(0), sc);
        let a = sc.perturb(42);
        let b = sc.perturb(42);
        assert_eq!(a, b);
        assert_ne!(a, sc);
        assert_eq!(a.loads, sc.loads);
        for (pf, bf) in a.frames.iter().zip(&sc.frames) {
            assert_eq!(pf.len(), bf.len());
            for ((pn, _), (bn, _)) in pf.iter().zip(bf) {
                assert_eq!(pn, bn);
            }
        }
        assert_ne!(sc.perturb(1), sc.perturb(2));
    }
}
