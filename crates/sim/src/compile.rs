//! Bytecode compilation: graph → state layout + flat execution image.
//!
//! Each node compiles to a short mid-level [`Instr`] stream. When
//! superinstruction fusion is enabled, a peephole pass collapses the
//! most frequent adjacent pairs (see [`fuse_instrs`]); the stream is
//! then lowered into the contiguous encoded arena of
//! [`crate::image::ExecImage`], and the [`Task`] keeps only a unit
//! range into it. With the locality-aware layout enabled, state slots
//! are segregated by role (inputs, register current/shadow pairs,
//! combinational values in sweep order) so the essential sweep and the
//! commit phase each walk contiguous memory.

use crate::image::{ExecImage, TaskCode};
use crate::storage::{MemArena, Slot, Space};
use crate::{CompileError, EngineKind, SimOptions};
use gsim_graph::{Expr, ExprKind, Graph, NodeId, NodeKind, PrimOp, Uses};
use gsim_partition::{Algorithm, Partition, PartitionOptions};
use gsim_value::{words_for, Value};
use std::collections::HashMap;

/// Successor-count threshold of the §III-B activation cost model: at or
/// below this many successors the branchless form (a handful of
/// unconditional OR operations) is cheaper than risking a branch miss;
/// above it, the branch predictor amortizes and branchy activation
/// avoids the per-successor work on unchanged values.
pub(crate) const BRANCHLESS_MAX_SUCCS: usize = 4;

/// Binary operations. Signedness comes from the operand slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Leq,
    Gt,
    Geq,
    Eq,
    Neq,
    And,
    Or,
    Xor,
    Dshl,
    Dshr,
}

/// Unary operations; `imm` carries shift amounts / slice offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnOp {
    Not,
    Andr,
    Orr,
    Xorr,
    Neg,
    /// `a << imm`.
    Shl,
    /// `a >> imm` (arithmetic when `a.signed`).
    Shr,
    /// bits extraction: `imm` = lo, width from `dst`.
    Bits,
}

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Instr {
    /// Zero-extending (or truncating) copy, masks to `dst.width`.
    Copy {
        dst: Slot,
        a: Slot,
    },
    /// Sign-extending copy from `a.width` to `dst.width`.
    Sext {
        dst: Slot,
        a: Slot,
    },
    Bin {
        op: BinOp,
        dst: Slot,
        a: Slot,
        b: Slot,
    },
    Un {
        op: UnOp,
        dst: Slot,
        a: Slot,
        imm: u32,
    },
    Mux {
        dst: Slot,
        sel: Slot,
        t: Slot,
        f: Slot,
    },
    Cat {
        dst: Slot,
        a: Slot,
        b: Slot,
    },
    ReadMem {
        dst: Slot,
        mem: u32,
        addr: Slot,
    },
    /// Fused compare→mux: `a ⊗ b` (signedness from `a`) selects `t` or
    /// `f`. Produced only by [`fuse_instrs`].
    CmpMux {
        /// One of the six comparison [`BinOp`]s.
        cmp: BinOp,
        dst: Slot,
        a: Slot,
        b: Slot,
        t: Slot,
        f: Slot,
    },
    /// Fused cat-of-const: `(a << shift) | imm`, masked to `dst.width`.
    /// Produced only by [`fuse_instrs`]; always single-word.
    CatImm {
        dst: Slot,
        a: Slot,
        imm: u64,
        shift: u32,
    },
}

/// What a task is, for engine epilogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskKind {
    /// No work (top-level inputs).
    Input,
    /// Combinational value (logic, outputs, memory reads).
    Comb,
    /// Register next-value computation into the shadow slot.
    Reg,
    /// Memory write port (index into `write_ports`).
    WritePort(u32),
}

/// One node's compiled evaluation: a unit range into the execution
/// image plus the engine metadata.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Task {
    pub node: u32,
    pub kind: TaskKind,
    /// Encoded unit range into [`Compiled::image`]'s code arena.
    pub code: (u32, u32),
    /// Logical instructions executed per evaluation (post-fusion;
    /// multi-unit encodings count once).
    pub n_instrs: u32,
    /// Fused superinstructions among `n_instrs`.
    pub n_fused: u32,
    /// Every unit is narrow: eligible for the fast dispatch loop.
    pub narrow_only: bool,
    /// Where the instruction stream leaves the value.
    pub result: Slot,
    /// The node's persistent state slot (current value; shadow for regs).
    pub out: Slot,
    /// Range into `Compiled::act_list`: supernodes to activate when the
    /// value changes.
    pub act: (u32, u32),
    /// Activation mode chosen by the cost model.
    pub branchless: bool,
}

/// Compile-time superinstruction fusion statistics (the pairs the
/// flat-image fusion pass collapsed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// op→masking-copy pairs collapsed by retargeting the producer's
    /// destination (includes register shadow copies).
    pub masking_copies: u32,
    /// Subset of `masking_copies` whose target is a register shadow.
    pub reg_shadow_copies: u32,
    /// compare→mux pairs fused into a single `CmpMux`.
    pub cmp_mux: u32,
    /// cat-of-const collapsed into an immediate-carrying `CatImm`.
    pub cat_const: u32,
}

impl FusionStats {
    /// Total adjacent pairs collapsed.
    pub fn fused_pairs(&self) -> u32 {
        self.masking_copies + self.cmp_mux + self.cat_const
    }
}

/// Register commit metadata.
#[derive(Debug, Clone)]
pub(crate) struct RegInfo {
    pub node: u32,
    pub cur: Slot,
    pub shadow: Slot,
    /// Activation range (readers' supernodes) in `act_list`.
    pub act: (u32, u32),
    /// Reset group index, if the register has slow-path reset.
    pub reset_group: Option<u32>,
    /// Init value slot in the const pool (present iff `reset_group`).
    pub init: Option<Slot>,
}

/// A distinct reset signal and the registers it controls.
#[derive(Debug, Clone)]
pub(crate) struct ResetGroup {
    pub signal: Slot,
    pub regs: Vec<u32>, // indices into reg_infos
}

/// Memory write port metadata.
#[derive(Debug, Clone)]
pub(crate) struct WritePortInfo {
    pub mem: u32,
    pub en: Slot,
    pub addr: Slot,
    pub data: Slot,
}

/// A compiled design ready for execution.
pub(crate) struct Compiled {
    /// The flat execution image every engine runs off.
    pub image: ExecImage,
    /// What the fusion pass collapsed (all zero when fusion is off).
    pub fusion: FusionStats,
    pub tasks: Vec<Task>,
    /// Task index ranges per supernode (essential engines).
    pub supernode_tasks: Vec<(u32, u32)>,
    /// Task index ranges per level (multithreaded full-cycle engine).
    pub level_tasks: Vec<(u32, u32)>,
    /// Supernode indices per dependency-DAG level (parallel essential
    /// engine); empty for the other engine kinds.
    pub supernode_levels: Vec<Vec<u32>>,
    pub consts: Vec<u64>,
    pub state_words: usize,
    pub scratch_words: usize,
    /// Value slot per node id.
    pub node_slot: Vec<Slot>,
    pub reg_infos: Vec<RegInfo>,
    pub reset_groups: Vec<ResetGroup>,
    pub write_ports: Vec<WritePortInfo>,
    /// Flat activation target list (supernode indices).
    pub act_list: Vec<u32>,
    /// Per input node: activation range in `act_list`.
    pub input_act: HashMap<u32, (u32, u32)>,
    /// Per memory: supernodes of its read ports (activated on writes).
    pub mem_read_act: Vec<Vec<u32>>,
    pub mems: Vec<MemArena>,
    /// Number of supernodes (bits in the active bitset).
    pub num_supernodes: usize,
    /// Name → node id.
    pub names: HashMap<String, u32>,
    /// Node widths/signs for peek/poke.
    pub node_meta: Vec<(u32, bool, bool)>, // (width, signed, is_input)
    /// Named top-level inputs `(name, width)`, declaration order — the
    /// Session trait's introspection surface.
    pub io_inputs: Vec<(String, u32)>,
    /// Portable peekable names `(name, width)`: outputs then inputs,
    /// deduplicated — matches the AoT binary's `signal` table.
    pub io_signals: Vec<(String, u32)>,
    /// Time spent partitioning (for Table III).
    pub partition_time: std::time::Duration,
}

pub(crate) fn compile(graph: &Graph, opts: &SimOptions) -> Result<Compiled, CompileError> {
    graph
        .validate()
        .map_err(|e| CompileError::InvalidGraph(e.to_string()))?;
    if let EngineKind::FullCycleMt { threads } | EngineKind::EssentialMt { threads } = opts.engine {
        if threads == 0 {
            return Err(CompileError::NoThreads);
        }
    }

    // Schedule: essential uses the partition's supernode order; the
    // full-cycle engines use one supernode per node in topo/level order.
    let (partition, level_bounds) = match opts.engine {
        EngineKind::Essential | EngineKind::EssentialMt { .. } | EngineKind::Threaded => {
            (gsim_partition::build(graph, &opts.partition), Vec::new())
        }
        EngineKind::FullCycle => (
            gsim_partition::build(
                graph,
                &PartitionOptions {
                    algorithm: Algorithm::None,
                    max_size: 1,
                },
            ),
            Vec::new(),
        ),
        EngineKind::FullCycleMt { .. } => {
            let levels = gsim_graph::Levels::compute(graph)
                .map_err(|e| CompileError::InvalidGraph(e.to_string()))?;
            let mut groups: Vec<Vec<NodeId>> = Vec::new();
            let mut bounds = Vec::new();
            let mut start = 0u32;
            for level in &levels.groups {
                for &id in level {
                    groups.push(vec![id]);
                }
                bounds.push((start, start + level.len() as u32));
                start += level.len() as u32;
            }
            (crate::compile::groups_to_partition(graph, groups), bounds)
        }
    };
    let partition_time = partition.build_time;
    // The parallel essential engine schedules over the supernode
    // dependency DAG: levels of mutually independent supernodes.
    let supernode_levels = if matches!(opts.engine, EngineKind::EssentialMt { .. }) {
        gsim_partition::SupernodeDag::compute(graph, &partition).groups
    } else {
        Vec::new()
    };

    let uses = Uses::build(graph);
    let mut c = Compiler {
        graph,
        opts,
        partition: &partition,
        uses: &uses,
        // Offset 0 is the reserved all-zero word that zero-width
        // operand reads are remapped to at encode time; single-word
        // zero constants intern onto it.
        consts: vec![0],
        const_map: HashMap::from([(vec![0u64], 0u32)]),
        state_words: 0,
        node_slot: vec![Slot::state(0, 0, false); graph.num_nodes()],
        scratch_high: 0,
    };

    // Slot assignment in schedule order (cache locality of the sweep).
    // The locality-aware layout additionally segregates the state
    // spaces: top-level inputs first, then register current/shadow
    // pairs (so the commit phase's shadow→current copies walk adjacent
    // words), then combinational values contiguous in sweep order.
    // Write-port staging slots land after everything during task
    // compilation. The legacy layout interleaves all of it in supernode
    // order and allocates shadows lazily, as before this pass existed.
    let mut shadow_slots: HashMap<usize, Slot> = HashMap::new();
    if opts.locality_layout {
        for members in &partition.supernodes {
            for &id in members {
                let node = graph.node(id);
                if matches!(node.kind, NodeKind::Input) {
                    c.node_slot[id.index()] = c.alloc_state(node.width, node.signed);
                }
            }
        }
        for members in &partition.supernodes {
            for &id in members {
                let node = graph.node(id);
                if node.kind.is_reg() {
                    c.node_slot[id.index()] = c.alloc_state(node.width, node.signed);
                    shadow_slots.insert(id.index(), c.alloc_state(node.width, node.signed));
                }
            }
        }
        for members in &partition.supernodes {
            for &id in members {
                let node = graph.node(id);
                if !matches!(node.kind, NodeKind::Input) && !node.kind.is_reg() {
                    c.node_slot[id.index()] = c.alloc_state(node.width, node.signed);
                }
            }
        }
    } else {
        for members in &partition.supernodes {
            for &id in members {
                let node = graph.node(id);
                c.node_slot[id.index()] = c.alloc_state(node.width, node.signed);
            }
        }
    }

    // Activation lists.
    let mut act_list: Vec<u32> = Vec::new();
    let mut node_act: Vec<(u32, u32)> = vec![(0, 0); graph.num_nodes()];
    let mut input_act = HashMap::new();
    for id in graph.node_ids() {
        let own = partition.assignment[id.index()];
        let node = graph.node(id);
        // Registers activate at commit (their readers run next cycle,
        // even in the same supernode); inputs activate from pokes, which
        // never execute the supernode's own block — both must include
        // their own supernode in the target list.
        let include_own = node.kind.is_reg() || matches!(node.kind, NodeKind::Input);
        let mut targets: Vec<u32> = uses
            .fanout(id)
            .iter()
            .map(|s| partition.assignment[s.index()])
            .filter(|&sn| include_own || sn != own)
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let start = act_list.len() as u32;
        act_list.extend_from_slice(&targets);
        let range = (start, act_list.len() as u32);
        node_act[id.index()] = range;
        if matches!(node.kind, NodeKind::Input) {
            input_act.insert(id.index() as u32, range);
        }
    }

    // Memory arenas + read-port activation.
    let mems: Vec<MemArena> = graph
        .mems()
        .iter()
        .map(|m| MemArena::new(m.name.clone(), m.depth, m.width))
        .collect();
    let mut mem_read_act: Vec<Vec<u32>> = vec![Vec::new(); mems.len()];
    for (id, node) in graph.iter() {
        if let NodeKind::MemRead { mem } = node.kind {
            mem_read_act[mem.index()].push(partition.assignment[id.index()]);
        }
    }
    for v in &mut mem_read_act {
        v.sort_unstable();
        v.dedup();
    }

    // Compile tasks in schedule order.
    let essential = matches!(
        opts.engine,
        EngineKind::Essential | EngineKind::EssentialMt { .. } | EngineKind::Threaded
    );
    let mut tasks: Vec<Task> = Vec::new();
    let mut supernode_tasks = Vec::with_capacity(partition.supernodes.len());
    let mut reg_infos: Vec<RegInfo> = Vec::new();
    let mut write_ports: Vec<WritePortInfo> = Vec::new();
    let mut reset_signals: HashMap<u32, u32> = HashMap::new(); // signal node -> group
    let mut reset_groups: Vec<ResetGroup> = Vec::new();

    let mut image = ExecImage::default();
    let mut fusion = FusionStats::default();
    let supernodes = partition.supernodes.clone();
    for members in &supernodes {
        let start = tasks.len() as u32;
        for &id in members {
            let node = graph.node(id);
            let out = c.node_slot[id.index()];
            let act = node_act[id.index()];
            let branchless = if essential && opts.activation_cost_model {
                (act.1 - act.0) as usize <= BRANCHLESS_MAX_SUCCS
            } else {
                // ESSENT's published technique: always branchless.
                true
            };
            // Per-kind draft: mid-level instruction stream + metadata.
            let (kind, instrs, result, out, act, branchless) = match &node.kind {
                NodeKind::Input => (TaskKind::Input, Vec::new(), out, out, act, branchless),
                NodeKind::Comb | NodeKind::Output | NodeKind::MemRead { .. } => {
                    let mut instrs = Vec::new();
                    let mut scratch = ScratchAlloc::default();
                    let result = match &node.kind {
                        NodeKind::MemRead { mem } => {
                            let addr_expr = node.expr.as_ref().expect("read addr");
                            let addr = c.compile_expr(addr_expr, &mut instrs, &mut scratch);
                            let dst = if essential {
                                scratch.alloc(node.width, false)
                            } else {
                                out
                            };
                            instrs.push(Instr::ReadMem {
                                dst,
                                mem: mem.index() as u32,
                                addr,
                            });
                            dst
                        }
                        _ => {
                            let e = node.expr.as_ref().expect("comb expr");
                            let r = c.compile_expr(e, &mut instrs, &mut scratch);
                            if essential {
                                r
                            } else {
                                if r != out {
                                    instrs.push(copy_or_sext(out, r));
                                }
                                out
                            }
                        }
                    };
                    c.scratch_high = c.scratch_high.max(scratch.high);
                    (TaskKind::Comb, instrs, result, out, act, branchless)
                }
                NodeKind::Reg { reset } => {
                    let mut instrs = Vec::new();
                    let mut scratch = ScratchAlloc::default();
                    let e = node.expr.as_ref().expect("reg next");
                    let shadow = shadow_slots
                        .remove(&id.index())
                        .unwrap_or_else(|| c.alloc_state(node.width, node.signed));
                    let r = c.compile_expr(e, &mut instrs, &mut scratch);
                    if r != shadow {
                        instrs.push(copy_or_sext(shadow, r));
                    }
                    c.scratch_high = c.scratch_high.max(scratch.high);
                    let (reset_group, init) = match reset {
                        Some(rr) if opts.reset_slow_path => {
                            let sig_idx = rr.signal.index() as u32;
                            let group = *reset_signals.entry(sig_idx).or_insert_with(|| {
                                let g = reset_groups.len() as u32;
                                reset_groups.push(ResetGroup {
                                    signal: c.node_slot[rr.signal.index()],
                                    regs: Vec::new(),
                                });
                                g
                            });
                            let init_slot = c.intern_const(&rr.init, node.signed);
                            (Some(group), Some(init_slot))
                        }
                        Some(rr) => {
                            // Fast-path reset: fold the mux into the
                            // shadow computation (Listing 5 behaviour)
                            // even though the graph kept metadata.
                            let sel = c.node_slot[rr.signal.index()];
                            let init_slot = c.intern_const(&rr.init, node.signed);
                            instrs.push(Instr::Mux {
                                dst: shadow,
                                sel,
                                t: init_slot,
                                f: shadow,
                            });
                            (None, None)
                        }
                        None => (None, None),
                    };
                    let reg_index = reg_infos.len() as u32;
                    reg_infos.push(RegInfo {
                        node: id.index() as u32,
                        cur: out,
                        shadow,
                        act,
                        reset_group,
                        init,
                    });
                    if let Some(g) = reg_group_of(&reg_infos[reg_index as usize]) {
                        reset_groups[g as usize].regs.push(reg_index);
                    }
                    // Regs activate at commit, not eval.
                    (TaskKind::Reg, instrs, shadow, shadow, (0, 0), true)
                }
                NodeKind::MemWrite { mem } => {
                    let w = node.mem_write_operands().expect("write operands");
                    let mut instrs = Vec::new();
                    let mut scratch = ScratchAlloc::default();
                    let en_slot = c.alloc_state(w.en.width, false);
                    let addr_slot = c.alloc_state(w.addr.width, false);
                    let data_slot = c.alloc_state(w.data.width, false);
                    for (expr, slot) in
                        [(&w.en, en_slot), (&w.addr, addr_slot), (&w.data, data_slot)]
                    {
                        let r = c.compile_expr(expr, &mut instrs, &mut scratch);
                        if r != slot {
                            instrs.push(copy_or_sext(slot, r));
                        }
                    }
                    c.scratch_high = c.scratch_high.max(scratch.high);
                    let port = write_ports.len() as u32;
                    write_ports.push(WritePortInfo {
                        mem: mem.index() as u32,
                        en: en_slot,
                        addr: addr_slot,
                        data: data_slot,
                    });
                    (
                        TaskKind::WritePort(port),
                        instrs,
                        en_slot,
                        en_slot,
                        (0, 0),
                        true,
                    )
                }
            };
            // Fusion, then lowering into the contiguous image.
            let shadow_target = matches!(kind, TaskKind::Reg).then_some(result);
            let instrs = if opts.superinstr_fusion {
                fuse_instrs(instrs, result, &c.consts, shadow_target, &mut fusion)
            } else {
                instrs
            };
            let n_fused = instrs
                .iter()
                .filter(|i| matches!(i, Instr::CmpMux { .. } | Instr::CatImm { .. }))
                .count() as u32;
            let TaskCode { range, narrow_only } = image.push_task(&instrs);
            tasks.push(Task {
                node: id.index() as u32,
                kind,
                code: range,
                n_instrs: instrs.len() as u32,
                n_fused,
                narrow_only,
                result,
                out,
                act,
                branchless,
            });
        }
        supernode_tasks.push((start, tasks.len() as u32));
    }

    let mut names = HashMap::new();
    for (id, node) in graph.iter() {
        if !node.name.is_empty() {
            names.insert(node.name.clone(), id.index() as u32);
        }
    }
    let node_meta = graph
        .node_ids()
        .map(|id| {
            let n = graph.node(id);
            (n.width, n.signed, matches!(n.kind, NodeKind::Input))
        })
        .collect();
    // Introspection metadata for the Session trait: the portable
    // signal surface, in the same order (outputs then inputs,
    // deduplicated) every backend reports.
    let io_inputs: Vec<(String, u32)> = graph
        .inputs()
        .iter()
        .map(|&id| graph.node(id))
        .filter(|n| !n.name.is_empty())
        .map(|n| (n.name.clone(), n.width))
        .collect();
    let mut io_signals: Vec<(String, u32)> = Vec::new();
    for &id in graph.outputs().iter().chain(graph.inputs()) {
        let n = graph.node(id);
        if !n.name.is_empty() && !io_signals.iter().any(|(s, _)| *s == n.name) {
            io_signals.push((n.name.clone(), n.width));
        }
    }

    Ok(Compiled {
        image,
        fusion,
        tasks,
        supernode_tasks,
        level_tasks: level_bounds,
        supernode_levels,
        consts: c.consts,
        state_words: c.state_words,
        scratch_words: c.scratch_high as usize,
        node_slot: c.node_slot,
        reg_infos,
        reset_groups,
        write_ports,
        act_list,
        input_act,
        mem_read_act,
        mems,
        num_supernodes: partition.supernodes.len(),
        names,
        node_meta,
        io_inputs,
        io_signals,
        partition_time,
    })
}

fn reg_group_of(info: &RegInfo) -> Option<u32> {
    info.reset_group
}

/// The superinstruction fusion pass: a peephole over one task's
/// instruction stream collapsing the most frequent adjacent pairs
/// measured on our designs.
///
/// * **op → masking-copy** — `X {dst: s}; Copy {dst: o, a: s}` with `s`
///   a single-use scratch slot and `o.width ≤ s.width` retargets `X`'s
///   destination to `o` and drops the copy (truncating masks compose,
///   so the value is bit-identical). This is also what collapses the
///   **register shadow copy** at the end of every register task.
/// * **compare → mux** — a comparison whose single use is the next
///   mux's selector becomes one [`Instr::CmpMux`].
/// * **cat-of-const** — a single-word `cat` whose low operand is a
///   pool constant becomes [`Instr::CatImm`] with the value inline.
///
/// `keep` is the slot the engine reads after the stream runs (the
/// task's result); counting it as a use keeps fusion away from values
/// with a lifetime beyond the stream. Scratch offsets are never reused
/// within a task, so offset equality identifies a value.
fn fuse_instrs(
    v: Vec<Instr>,
    keep: Slot,
    consts: &[u64],
    shadow: Option<Slot>,
    stats: &mut FusionStats,
) -> Vec<Instr> {
    let mut uses: HashMap<u32, u32> = HashMap::new();
    {
        let mut bump = |s: Slot| {
            if s.space == Space::Scratch {
                *uses.entry(s.off).or_insert(0) += 1;
            }
        };
        for ins in &v {
            match *ins {
                Instr::Copy { a, .. }
                | Instr::Sext { a, .. }
                | Instr::Un { a, .. }
                | Instr::CatImm { a, .. } => bump(a),
                Instr::Bin { a, b, .. } | Instr::Cat { a, b, .. } => {
                    bump(a);
                    bump(b);
                }
                Instr::Mux { sel, t, f, .. } => {
                    bump(sel);
                    bump(t);
                    bump(f);
                }
                Instr::CmpMux { a, b, t, f, .. } => {
                    bump(a);
                    bump(b);
                    bump(t);
                    bump(f);
                }
                Instr::ReadMem { addr, .. } => bump(addr),
            }
        }
        bump(keep);
    }
    let used_once = |s: Slot| s.space == Space::Scratch && uses.get(&s.off) == Some(&1);

    let mut out: Vec<Instr> = Vec::with_capacity(v.len());
    for ins in v {
        // Cat-of-const: fold the pool load into an immediate (single
        // word, value small enough for the encoded immediate field).
        // A constant low half becomes `(a << width(b)) | imm`; a
        // constant high half becomes `(b << 0) | (imm << width(b))` —
        // canonical operands never overlap the shifted immediate.
        let ins = match ins {
            Instr::Cat { dst, a, b }
                if b.space == Space::Const
                    && dst.words <= 1
                    && b.width < 64
                    && const_word(b, consts) <= u32::MAX as u64 =>
            {
                stats.cat_const += 1;
                Instr::CatImm {
                    dst,
                    a,
                    imm: const_word(b, consts),
                    shift: b.width,
                }
            }
            Instr::Cat { dst, a, b }
                if a.space == Space::Const
                    && dst.words <= 1
                    && b.width < 64
                    && const_word(a, consts) << b.width <= u32::MAX as u64 =>
            {
                stats.cat_const += 1;
                Instr::CatImm {
                    dst,
                    a: b,
                    imm: const_word(a, consts) << b.width,
                    shift: 0,
                }
            }
            other => other,
        };
        // Op → masking-copy: retarget the producer's destination.
        if let Instr::Copy { dst: o, a: src } = ins {
            if o.words <= 1 && used_once(src) {
                if let Some(prev) = out.last_mut() {
                    let d = dst_mut(prev);
                    if d.space == Space::Scratch
                        && d.off == src.off
                        && d.words <= 1
                        && o.width <= d.width
                    {
                        *d = o;
                        stats.masking_copies += 1;
                        if shadow.is_some_and(|s| s.space == o.space && s.off == o.off) {
                            stats.reg_shadow_copies += 1;
                        }
                        continue;
                    }
                }
            }
        }
        // Compare → mux: the comparison's only consumer is the
        // selector of the immediately following mux.
        if let Instr::Mux { dst, sel, t, f } = ins {
            if used_once(sel) {
                if let Some(last) = out.last_mut() {
                    if let Instr::Bin { op, dst: s, a, b } = *last {
                        if is_cmp(op) && s.space == Space::Scratch && s.off == sel.off {
                            *last = Instr::CmpMux {
                                cmp: op,
                                dst,
                                a,
                                b,
                                t,
                                f,
                            };
                            stats.cmp_mux += 1;
                            continue;
                        }
                    }
                }
            }
        }
        out.push(ins);
    }
    out
}

/// Mutable destination slot of any instruction (every kind has one).
fn dst_mut(ins: &mut Instr) -> &mut Slot {
    match ins {
        Instr::Copy { dst, .. }
        | Instr::Sext { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Un { dst, .. }
        | Instr::Mux { dst, .. }
        | Instr::Cat { dst, .. }
        | Instr::CatImm { dst, .. }
        | Instr::ReadMem { dst, .. }
        | Instr::CmpMux { dst, .. } => dst,
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt | BinOp::Leq | BinOp::Gt | BinOp::Geq | BinOp::Eq | BinOp::Neq
    )
}

/// First word of a single-word constant slot (zero-width reads zero).
fn const_word(s: Slot, consts: &[u64]) -> u64 {
    if s.words == 0 {
        0
    } else {
        consts[s.off as usize]
    }
}

/// Builds a `Partition` facade from explicit groups (multithreaded
/// schedule), reusing the partition type for uniform compilation.
fn groups_to_partition(graph: &Graph, groups: Vec<Vec<NodeId>>) -> Partition {
    let mut assignment = vec![0u32; graph.num_nodes()];
    for (i, g) in groups.iter().enumerate() {
        for &id in g {
            assignment[id.index()] = i as u32;
        }
    }
    Partition {
        assignment,
        supernodes: groups,
        build_time: std::time::Duration::ZERO,
        algorithm: Algorithm::None,
    }
}

#[derive(Default)]
struct ScratchAlloc {
    next: u32,
    high: u32,
}

impl ScratchAlloc {
    fn alloc(&mut self, width: u32, signed: bool) -> Slot {
        let words = words_for(width) as u32;
        let slot = Slot::scratch(self.next, width, signed);
        self.next += words;
        self.high = self.high.max(self.next);
        slot
    }
}

struct Compiler<'a> {
    #[allow(dead_code)]
    graph: &'a Graph,
    #[allow(dead_code)]
    opts: &'a SimOptions,
    #[allow(dead_code)]
    partition: &'a Partition,
    #[allow(dead_code)]
    uses: &'a Uses,
    consts: Vec<u64>,
    const_map: HashMap<Vec<u64>, u32>,
    state_words: usize,
    node_slot: Vec<Slot>,
    scratch_high: u32,
}

impl Compiler<'_> {
    fn alloc_state(&mut self, width: u32, signed: bool) -> Slot {
        let slot = Slot::state(self.state_words as u32, width, signed);
        self.state_words += words_for(width);
        slot
    }

    fn intern_const(&mut self, v: &Value, signed: bool) -> Slot {
        let words: Vec<u64> = v.words().to_vec();
        let off = match self.const_map.get(&words) {
            Some(&off) => off,
            None => {
                let off = self.consts.len() as u32;
                self.consts.extend_from_slice(&words);
                self.const_map.insert(words, off);
                off
            }
        };
        Slot::constant(off, v.width(), signed)
    }

    /// Compiles an expression, returning the slot holding its value.
    /// Leaf expressions return their existing slot without copying.
    fn compile_expr(&mut self, e: &Expr, out: &mut Vec<Instr>, scratch: &mut ScratchAlloc) -> Slot {
        match &e.kind {
            ExprKind::Const(v) => self.intern_const(v, e.signed),
            ExprKind::Ref(id) => {
                let mut s = self.node_slot[id.index()];
                debug_assert_eq!(s.width, e.width, "ref width mismatch at {id}");
                s.signed = e.signed;
                s
            }
            ExprKind::Prim(op, args, params) => {
                use PrimOp::*;
                match op {
                    AsUInt | AsSInt => {
                        let mut a = self.compile_expr(&args[0], out, scratch);
                        a.signed = *op == AsSInt;
                        a
                    }
                    Cvt => {
                        let a = self.compile_expr(&args[0], out, scratch);
                        if a.signed {
                            a
                        } else {
                            // zero-extend by one bit; canonical words may
                            // already suffice.
                            let mut widened = a;
                            widened.signed = true;
                            if words_for(e.width) as u16 == a.words {
                                widened.width = e.width;
                                widened
                            } else {
                                let dst = scratch.alloc(e.width, true);
                                out.push(Instr::Copy { dst, a });
                                dst
                            }
                        }
                    }
                    Pad => {
                        let a = self.compile_expr(&args[0], out, scratch);
                        if e.width <= a.width {
                            a
                        } else if a.signed {
                            let dst = scratch.alloc(e.width, true);
                            out.push(Instr::Sext { dst, a });
                            dst
                        } else if words_for(e.width) as u16 == a.words {
                            let mut widened = a;
                            widened.width = e.width;
                            widened
                        } else {
                            let dst = scratch.alloc(e.width, false);
                            out.push(Instr::Copy { dst, a });
                            dst
                        }
                    }
                    Mux => {
                        let sel = self.compile_expr(&args[0], out, scratch);
                        let t = self.compile_expr(&args[1], out, scratch);
                        let f = self.compile_expr(&args[2], out, scratch);
                        let dst = scratch.alloc(e.width, e.signed);
                        out.push(Instr::Mux { dst, sel, t, f });
                        dst
                    }
                    Cat => {
                        let a = self.compile_expr(&args[0], out, scratch);
                        let b = self.compile_expr(&args[1], out, scratch);
                        let dst = scratch.alloc(e.width, e.signed);
                        out.push(Instr::Cat { dst, a, b });
                        dst
                    }
                    Bits => {
                        let a = self.compile_expr(&args[0], out, scratch);
                        let dst = scratch.alloc(e.width, e.signed);
                        out.push(Instr::Un {
                            op: UnOp::Bits,
                            dst,
                            a,
                            imm: params[1],
                        });
                        dst
                    }
                    Head => {
                        let a = self.compile_expr(&args[0], out, scratch);
                        let dst = scratch.alloc(e.width, e.signed);
                        out.push(Instr::Un {
                            op: UnOp::Bits,
                            dst,
                            a,
                            imm: a.width - params[0],
                        });
                        dst
                    }
                    Tail => {
                        let a = self.compile_expr(&args[0], out, scratch);
                        let dst = scratch.alloc(e.width, e.signed);
                        out.push(Instr::Un {
                            op: UnOp::Bits,
                            dst,
                            a,
                            imm: 0,
                        });
                        dst
                    }
                    Shl | Shr => {
                        let a = self.compile_expr(&args[0], out, scratch);
                        let dst = scratch.alloc(e.width, e.signed);
                        out.push(Instr::Un {
                            op: if *op == Shl { UnOp::Shl } else { UnOp::Shr },
                            dst,
                            a,
                            imm: params[0],
                        });
                        dst
                    }
                    Not | Andr | Orr | Xorr | Neg => {
                        let a = self.compile_expr(&args[0], out, scratch);
                        let dst = scratch.alloc(e.width, e.signed);
                        let uop = match op {
                            Not => UnOp::Not,
                            Andr => UnOp::Andr,
                            Orr => UnOp::Orr,
                            Xorr => UnOp::Xorr,
                            _ => UnOp::Neg,
                        };
                        out.push(Instr::Un {
                            op: uop,
                            dst,
                            a,
                            imm: 0,
                        });
                        dst
                    }
                    _ => {
                        let a = self.compile_expr(&args[0], out, scratch);
                        let b = self.compile_expr(&args[1], out, scratch);
                        let dst = scratch.alloc(e.width, e.signed);
                        let bop = match op {
                            Add => BinOp::Add,
                            Sub => BinOp::Sub,
                            Mul => BinOp::Mul,
                            Div => BinOp::Div,
                            Rem => BinOp::Rem,
                            Lt => BinOp::Lt,
                            Leq => BinOp::Leq,
                            Gt => BinOp::Gt,
                            Geq => BinOp::Geq,
                            PrimOp::Eq => BinOp::Eq,
                            Neq => BinOp::Neq,
                            And => BinOp::And,
                            Or => BinOp::Or,
                            Xor => BinOp::Xor,
                            Dshl => BinOp::Dshl,
                            Dshr => BinOp::Dshr,
                            other => unreachable!("op {other} handled above"),
                        };
                        out.push(Instr::Bin { op: bop, dst, a, b });
                        dst
                    }
                }
            }
        }
    }
}

/// Copy that preserves signed interpretation (sign-extends when the
/// source is signed and narrower).
fn copy_or_sext(dst: Slot, a: Slot) -> Instr {
    if a.signed && a.width < dst.width {
        Instr::Sext { dst, a }
    } else {
        Instr::Copy { dst, a }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_counter() {
        let g = gsim_firrtl::compile(
            r#"
circuit C :
  module C :
    input clock : Clock
    input reset : UInt<1>
    output out : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    c <= tail(add(c, UInt<8>(1)), 1)
    out <= c
"#,
        )
        .unwrap();
        let compiled = compile(&g, &SimOptions::default()).unwrap();
        assert_eq!(compiled.reg_infos.len(), 1);
        assert_eq!(compiled.reset_groups.len(), 1);
        assert!(compiled.num_supernodes >= 1);
        assert!(compiled.state_words >= 2);
        // Counter task exists with at least an add.
        assert!(compiled
            .tasks
            .iter()
            .any(|t| matches!(t.kind, TaskKind::Reg)));
    }

    #[test]
    fn fast_path_reset_folds_into_mux() {
        let g = gsim_firrtl::compile(
            r#"
circuit C :
  module C :
    input clock : Clock
    input reset : UInt<1>
    output out : UInt<4>
    reg c : UInt<4>, clock with : (reset => (reset, UInt<4>(5)))
    c <= c
    out <= c
"#,
        )
        .unwrap();
        let opts = SimOptions {
            reset_slow_path: false,
            ..SimOptions::default()
        };
        let compiled = compile(&g, &opts).unwrap();
        assert!(compiled.reset_groups.is_empty());
        let reg_task = compiled
            .tasks
            .iter()
            .find(|t| matches!(t.kind, TaskKind::Reg))
            .unwrap();
        let code = &compiled.image.code[reg_task.code.0 as usize..reg_task.code.1 as usize];
        let has_mux = code.iter().any(|e| {
            matches!(e.op, crate::image::Op::Mux)
                || (matches!(e.op, crate::image::Op::Wide)
                    && matches!(compiled.image.wide[e.a as usize], Instr::Mux { .. }))
        });
        assert!(has_mux, "fast-path reset must compile to a mux");
    }

    #[test]
    fn fusion_collapses_pairs_and_preserves_counts() {
        // A trailing masking copy (full-cycle mode), a compare feeding
        // a mux, and a cat of a constant — one of each fusion class.
        let g = gsim_firrtl::compile(
            r#"
circuit F :
  module F :
    input a : UInt<8>
    input b : UInt<8>
    output y : UInt<8>
    output z : UInt<9>
    y <= mux(lt(a, b), a, b)
    z <= cat(UInt<1>(1), a)
"#,
        )
        .unwrap();
        let fused = compile(&g, &SimOptions::full_cycle()).unwrap();
        let plain = compile(
            &g,
            &SimOptions {
                superinstr_fusion: false,
                ..SimOptions::full_cycle()
            },
        )
        .unwrap();
        assert!(fused.fusion.cmp_mux >= 1, "{:?}", fused.fusion);
        assert!(fused.fusion.cat_const >= 1, "{:?}", fused.fusion);
        assert!(fused.fusion.masking_copies >= 1, "{:?}", fused.fusion);
        assert_eq!(plain.fusion, FusionStats::default());
        let fused_n: u32 = fused.tasks.iter().map(|t| t.n_instrs).sum();
        let plain_n: u32 = plain.tasks.iter().map(|t| t.n_instrs).sum();
        assert!(fused_n < plain_n, "fusion must shrink the stream");
    }

    #[test]
    fn locality_layout_segregates_spaces() {
        let g = gsim_firrtl::compile(
            r#"
circuit L :
  module L :
    input clock : Clock
    input a : UInt<8>
    output y : UInt<8>
    reg r : UInt<8>, clock
    r <= a
    node t = xor(r, a)
    y <= t
"#,
        )
        .unwrap();
        let compiled = compile(&g, &SimOptions::default()).unwrap();
        let mut input_offs = Vec::new();
        let mut comb_offs = Vec::new();
        for t in &compiled.tasks {
            match t.kind {
                TaskKind::Input => input_offs.push(t.out.off),
                TaskKind::Comb => comb_offs.push(t.out.off),
                _ => {}
            }
        }
        let reg = &compiled.reg_infos[0];
        // Inputs come first; register cur/shadow are adjacent and
        // precede combinational values.
        assert!(input_offs.iter().max() < comb_offs.iter().min());
        assert_eq!(reg.shadow.off, reg.cur.off + reg.cur.words as u32);
        assert!(comb_offs.iter().all(|&o| o > reg.shadow.off));
    }

    #[test]
    fn const_pool_dedups() {
        let g = gsim_firrtl::compile(
            r#"
circuit K :
  module K :
    input a : UInt<8>
    output x : UInt<8>
    output y : UInt<8>
    x <= and(a, UInt<8>(77))
    y <= or(a, UInt<8>(77))
"#,
        )
        .unwrap();
        let compiled = compile(&g, &SimOptions::default()).unwrap();
        let count_77 = compiled.consts.iter().filter(|&&w| w == 77).count();
        assert_eq!(count_77, 1, "same constant interned once");
    }

    #[test]
    fn mt_levels_cover_all_tasks() {
        let g = gsim_firrtl::compile(
            r#"
circuit M :
  module M :
    input a : UInt<8>
    output y : UInt<8>
    node t1 = not(a)
    node t2 = xor(t1, a)
    y <= t2
"#,
        )
        .unwrap();
        let compiled = compile(&g, &SimOptions::full_cycle_mt(2)).unwrap();
        let total: u32 = compiled.level_tasks.iter().map(|(a, b)| b - a).sum();
        assert_eq!(total as usize, compiled.tasks.len());
    }
}
