//! Snapshot-fork scenario exploration: one warmed-up simulation,
//! fanned out into N divergent [`Scenario`] branches.
//!
//! The persistent-session work made *latency* cheap — one compile,
//! arbitrarily many interactions. This module makes *throughput*
//! cheap: an [`Explorer`] takes a session that has already been
//! warmed to an interesting state, captures that state once, and runs
//! N branch scenarios (typically a [`Scenario::perturb`] corpus)
//! across a worker pool, each branch starting from the shared
//! snapshot and evolving independently. Forking is copy-on-write
//! where the backend allows it:
//!
//! * **interp / jit** — [`crate::Simulator::fork`] shares the
//!   compiled design, the lowered threaded-code program, and every
//!   memory arena behind `Arc`s; a fork copies signal state only.
//! * **AoT** — one [`Session::export_state`] blob is imported into a
//!   pool of sibling processes spawned from the *same* compiled
//!   binary, so N branches cost one `rustc` invocation total.
//!
//! Workers snapshot their fork once and [`Session::restore`] between
//! branches, so each branch pays state-restore, not session-open.
//! Every branch is bit-pinned: running the same perturbed scenario
//! sequentially on the reference interpreter produces identical
//! peeks, and a sequential replay on the same backend produces
//! identical counters (the differential tests enforce both).
//!
//! With [`ExploreOptions::divergence`] on, every branch also captures
//! a change-driven waveform of the watched signals (where the backend
//! supports [`Session::trace_start`]) and reports its divergence from
//! branch 0 as the *first differing change* — an absolute cycle — not
//! just the first differing end-of-branch peek.
//!
//! A branch that dies mid-run (an AoT child killed under it) is
//! retried on a fresh session from the recovery factory, bounded by
//! [`ExploreOptions::max_retries`]; retries are reported per branch.

use crate::counters::Counters;
use crate::scenario::Scenario;
use crate::session::{GsimError, Session};
use gsim_value::Value;
use gsim_wave::{first_difference, Wave, WaveCell};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A thread-safe factory producing fresh sessions *at the fork
/// point* (same design, same warmed-up state): the recovery path the
/// [`Explorer`] uses to replace a branch worker whose session died,
/// and the fork source for backends without
/// [`Session::clone_at_snapshot`]. For the AoT backend the cheap
/// recipe is importing a saved [`Session::export_state`] blob; for
/// in-process backends, replaying the warm-up scenario.
pub type SendSessionFactory = dyn Fn() -> Result<Box<dyn Session + Send>, GsimError> + Send + Sync;

/// Tuning knobs for one [`Explorer::run`] call.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Branch worker threads. `0` (the default) uses the host's
    /// available parallelism, capped at the branch count.
    pub workers: usize,
    /// How many times a single branch may be retried on a fresh
    /// session after a fatal (transport-class) error before the
    /// whole exploration fails.
    pub max_retries: u32,
    /// Signals recorded per branch. Empty (the default) records the
    /// portable [`Session::signals`] list; a non-empty list is
    /// validated against that list up front, so a typo fails the
    /// whole run with [`GsimError::UnknownSignal`] before any branch
    /// is forked rather than mid-fan-out.
    pub watch: Vec<String>,
    /// Track each branch's divergence cycle and capture per-branch
    /// waveforms. On backends with [`Session::trace_start`] support
    /// each branch records a change-driven [`Wave`] of the watched
    /// signals and divergence is the branch's *first differing
    /// change* against branch 0's wave; on backends without capture
    /// the explorer falls back to per-cycle peek rows (same
    /// divergence cycle, no wave). Costs per-cycle observation, so
    /// throughput benchmarks turn it off.
    pub divergence: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            workers: 0,
            max_retries: 2,
            watch: Vec::new(),
            divergence: false,
        }
    }
}

/// The outcome of one explored branch.
#[derive(Debug, Clone)]
pub struct BranchResult {
    /// Branch index `i` (the branch ran `base.perturb(i)`).
    pub index: usize,
    /// The session's cycle count when the branch finished.
    pub cycle: u64,
    /// Watched signal values at the end of the branch.
    pub peeks: Vec<(String, Value)>,
    /// Semantic counters at the end of the branch (cumulative since
    /// the session opened, so they are fork-invariant: a sequential
    /// replay from a cold session reports the same numbers).
    pub counters: Counters,
    /// The pass/fail predicate's verdict, when one was supplied.
    pub pass: Option<bool>,
    /// First *absolute* cycle at which this branch's watched-signal
    /// history differed from branch 0's — the first differing change
    /// when waves are captured, the first differing per-cycle peek
    /// row on the fallback path (both stamp the same cycle). `None`
    /// for branch 0 itself, for branches that never diverged, or when
    /// divergence tracking is off.
    pub divergence_cycle: Option<u64>,
    /// This branch's captured waveform of the watched signals (time
    /// axis = absolute cycles, baseline at the fork point). `Some`
    /// only when [`ExploreOptions::divergence`] is on and the branch
    /// session supports [`Session::trace_start`].
    pub wave: Option<Wave>,
    /// Fatal-error retries this branch consumed (normally 0).
    pub retries: u32,
}

impl BranchResult {
    /// Renders the canonical `branch` wire line:
    /// `branch <i> <cycle> <name>=<hex>... counters <cycles>
    /// <supernode_evals> <node_evals> <value_changes>`. The service
    /// streams exactly this per branch, and the CLI prints it for
    /// local runs, so a remote exploration can be diffed textually
    /// against a local replay.
    pub fn render_wire(&self) -> String {
        let mut s = format!("branch {} {}", self.index, self.cycle);
        for (name, v) in &self.peeks {
            s.push_str(&format!(" {name}={v:x}"));
        }
        s.push_str(&format!(
            " counters {} {} {} {}",
            self.counters.cycles,
            self.counters.supernode_evals,
            self.counters.node_evals,
            self.counters.value_changes
        ));
        s
    }
}

/// Aggregate statistics for one [`Explorer::run`] call.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Per-branch results, in branch-index order.
    pub branches: Vec<BranchResult>,
    /// Worker threads used.
    pub workers: usize,
    /// Sessions obtained by [`Session::clone_at_snapshot`] on the
    /// warmed core.
    pub forks: usize,
    /// Sessions obtained from the recovery factory (pool fill-in
    /// where the backend cannot fork, plus fatal-error retries).
    pub recoveries: usize,
}

impl ExploreReport {
    /// Total fatal-error retries across all branches.
    pub fn total_retries(&self) -> u64 {
        self.branches.iter().map(|b| b.retries as u64).sum()
    }
}

/// Runs N divergent scenario branches from one shared snapshot of a
/// warmed-up session.
///
/// The core session is borrowed for the duration of the run and
/// handed back in the state it was in (forks and a snapshot/restore
/// round trip are the only operations applied to it), so a
/// long-lived interactive session — a server tenant — can explore
/// mid-flight and continue afterwards.
pub struct Explorer<'a> {
    core: &'a mut dyn Session,
    recover: Option<&'a SendSessionFactory>,
    opts: ExploreOptions,
}

impl<'a> Explorer<'a> {
    /// An explorer forking from `core`, which must already be at the
    /// state branches should start from (warmed up by the caller).
    pub fn new(core: &'a mut dyn Session) -> Explorer<'a> {
        Explorer {
            core,
            recover: None,
            opts: ExploreOptions::default(),
        }
    }

    /// Supplies the recovery factory: fresh sessions at the fork
    /// point, used to retry branches whose session died and to fill
    /// the pool on backends that cannot fork.
    pub fn with_recovery(mut self, recover: &'a SendSessionFactory) -> Explorer<'a> {
        self.recover = Some(recover);
        self
    }

    /// Replaces the option block (see [`ExploreOptions`]).
    pub fn options(mut self, opts: ExploreOptions) -> Explorer<'a> {
        self.opts = opts;
        self
    }

    /// Runs branches `0..n`, where branch `i` executes
    /// `base.perturb(i as u64)` (branch 0 is the base scenario
    /// itself), and returns per-branch results in index order.
    ///
    /// `pass` is an optional verdict predicate evaluated once per
    /// branch result.
    ///
    /// # Errors
    ///
    /// Any session error a branch run hits after its retry budget is
    /// exhausted; [`GsimError::UnknownSignal`] when a watched signal
    /// does not resolve; fork/recovery errors while building the
    /// worker pool. [`GsimError::Unsupported`] from
    /// [`Session::clone_at_snapshot`] is *not* an error — the
    /// explorer falls back to the recovery factory, or to running
    /// all branches sequentially on the core itself.
    pub fn run(
        &mut self,
        base: &Scenario,
        n: usize,
        pass: Option<&dyn Fn(&BranchResult) -> bool>,
    ) -> Result<ExploreReport, GsimError> {
        let mut report = ExploreReport {
            branches: Vec::with_capacity(n),
            workers: 0,
            forks: 0,
            recoveries: 0,
        };
        if n == 0 {
            return Ok(report);
        }
        let portable: Vec<String> = self.core.signals()?.into_iter().map(|s| s.name).collect();
        let watch: Vec<String> = if self.opts.watch.is_empty() {
            portable
        } else {
            // Validate the watch list up front: a typo fails here,
            // typed, before any fork — not mid-fan-out inside a
            // worker with branches already in flight.
            let known: std::collections::HashSet<&str> =
                portable.iter().map(|s| s.as_str()).collect();
            for w in &self.opts.watch {
                if !known.contains(w.as_str()) {
                    return Err(GsimError::UnknownSignal(w.clone()));
                }
            }
            self.opts.watch.clone()
        };
        let fork_cycle = self.core.cycle();
        // Branch 0's observation baseline, for divergence tracking: a
        // captured wave where the backend supports tracing, per-cycle
        // peek rows otherwise.
        let div: DivBase = if self.opts.divergence {
            let snap = self.core.snapshot()?;
            let (_, wave, rows) = run_branch_div(self.core, base, &watch, DivKind::Wave)?;
            self.core.restore(snap)?;
            match wave {
                Some(w) => DivBase::Wave(w),
                None => DivBase::Peeks(rows),
            }
        } else {
            DivBase::Off
        };

        // Build the worker pool: forks first, recovery fill-in, and a
        // sequential run on the core itself as the universal fallback.
        let want_workers = if self.opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.opts.workers
        }
        .min(n)
        .max(1);
        let mut pool: Vec<Box<dyn Session + Send>> = Vec::new();
        for _ in 0..want_workers {
            match self.core.clone_at_snapshot() {
                Ok(s) => {
                    report.forks += 1;
                    pool.push(s);
                }
                Err(GsimError::Unsupported(_)) => break,
                Err(e) => return Err(e),
            }
        }
        if pool.is_empty() {
            if let Some(recover) = self.recover {
                for _ in 0..want_workers {
                    pool.push(recover()?);
                    report.recoveries += 1;
                }
            }
        }

        let retry_budget = self.opts.max_retries;
        let next = AtomicUsize::new(0);
        let recoveries = AtomicUsize::new(0);
        let recover = self.recover;

        let mut results: Vec<BranchResult> = if pool.is_empty() {
            // No fork support and no recovery factory: run every
            // branch on the core, snapshot/restore between branches.
            report.workers = 1;
            let snap = self.core.snapshot()?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let sc = base.perturb(i as u64);
                let (obs, wave, rows) = run_branch_div(self.core, &sc, &watch, div.kind())?;
                out.push(finish_branch(i, obs, 0, &div, wave, &rows, fork_cycle));
                self.core.restore(snap)?;
            }
            out
        } else {
            report.workers = pool.len();
            let watch = &watch;
            let div = &div;
            let worker =
                |mut session: Box<dyn Session + Send>| -> Result<Vec<BranchResult>, GsimError> {
                    let mut snap = session.snapshot()?;
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return Ok(out);
                        }
                        let sc = base.perturb(i as u64);
                        let mut retries = 0u32;
                        loop {
                            let attempt = session.restore(snap).and_then(|()| {
                                run_branch_div(session.as_mut(), &sc, watch, div.kind())
                            });
                            match attempt {
                                Ok((obs, wave, rows)) => {
                                    out.push(finish_branch(
                                        i, obs, retries, div, wave, &rows, fork_cycle,
                                    ));
                                    break;
                                }
                                Err(e) if e.is_fatal() && retries < retry_budget => {
                                    let Some(recover) = recover else {
                                        return Err(e);
                                    };
                                    session = recover()?;
                                    snap = session.snapshot()?;
                                    recoveries.fetch_add(1, Ordering::Relaxed);
                                    retries += 1;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    }
                };
            let per_worker: Vec<Result<Vec<BranchResult>, GsimError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = pool
                        .into_iter()
                        .map(|session| scope.spawn(|| worker(session)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("explore worker panicked"))
                        .collect()
                });
            let mut all = Vec::with_capacity(n);
            for r in per_worker {
                all.extend(r?);
            }
            all
        };
        report.recoveries += recoveries.load(Ordering::Relaxed);
        results.sort_by_key(|b| b.index);
        if let Some(pass) = pass {
            for b in &mut results {
                b.pass = Some(pass(b));
            }
        }
        report.branches = results;
        Ok(report)
    }
}

/// Branch 0's recorded observation history — the baseline every
/// other branch's history is diffed against for divergence tracking.
enum DivBase {
    /// Divergence tracking is off; branches run the batched fast path.
    Off,
    /// A change-driven [`Wave`] of the watched signals, captured via
    /// [`Session::trace_start`]. Divergence is the first differing
    /// change between two waves.
    Wave(Wave),
    /// Per-cycle peek rows: the fallback for backends without wave
    /// capture. Divergence is the first differing row, translated to
    /// an absolute cycle.
    Peeks(Vec<Vec<Value>>),
}

/// How a branch should observe its history (the discriminant of
/// [`DivBase`], threadable by value into worker closures).
#[derive(Clone, Copy, PartialEq)]
enum DivKind {
    Off,
    Wave,
    Peeks,
}

impl DivBase {
    fn kind(&self) -> DivKind {
        match self {
            DivBase::Off => DivKind::Off,
            DivBase::Wave(_) => DivKind::Wave,
            DivBase::Peeks(_) => DivKind::Peeks,
        }
    }
}

/// Builds one [`BranchResult`], computing the divergence cycle from
/// the branch's recorded history against branch 0's baseline.
fn finish_branch(
    index: usize,
    obs: BranchObservation,
    retries: u32,
    div: &DivBase,
    wave: Option<Wave>,
    rows: &[Vec<Value>],
    fork_cycle: u64,
) -> BranchResult {
    let (cycle, peeks, counters) = obs;
    let divergence_cycle = match div {
        DivBase::Off => None,
        // The tracer stamps each change with the cycle *after* which
        // the value is observable, so wave times are already absolute.
        DivBase::Wave(base) => wave.as_ref().and_then(|w| first_difference(base, w)),
        // Peek row `r` holds the values observable after cycle
        // `fork_cycle + r + 1`.
        DivBase::Peeks(base) => rows
            .iter()
            .zip(base)
            .position(|(a, b)| a != b)
            .map(|r| fork_cycle + r as u64 + 1),
    };
    BranchResult {
        index,
        cycle,
        peeks,
        counters,
        pass: None,
        divergence_cycle,
        wave,
        retries,
    }
}

/// What [`run_branch`] observes: the session's end cycle, the
/// watched peeks, and the cumulative counters.
type BranchObservation = (u64, Vec<(String, Value)>, Counters);

/// What [`run_branch_div`] returns: the observation plus the recorded
/// history — a captured wave (wave mode) or per-cycle peek rows
/// (fallback mode).
type BranchRecord = (BranchObservation, Option<Wave>, Vec<Vec<Value>>);

/// Runs one branch under the requested divergence-observation mode
/// and returns the observation plus the recorded history: a captured
/// wave (wave mode) or per-cycle peek rows (fallback mode).
///
/// `DivKind::Wave` degrades to peek rows when this particular
/// session lacks [`Session::trace_start`] (a recovery session of a
/// different backend than the core); the branch then reports no
/// divergence cycle rather than failing.
fn run_branch_div(
    session: &mut dyn Session,
    sc: &Scenario,
    watch: &[String],
    kind: DivKind,
) -> Result<BranchRecord, GsimError> {
    match kind {
        DivKind::Off => {
            let obs = run_branch(session, sc, watch, None)?;
            Ok((obs, None, Vec::new()))
        }
        DivKind::Wave => {
            let cell = WaveCell::new();
            match session.trace_start(Some(watch), Box::new(cell.sink())) {
                Ok(()) => {
                    let obs = match run_branch(session, sc, watch, None) {
                        Ok(obs) => obs,
                        Err(e) => {
                            // Don't leave the session with an active
                            // trace: a retry would hit `Config`.
                            let _ = session.trace_stop();
                            return Err(e);
                        }
                    };
                    session.trace_stop()?;
                    Ok((obs, Some(cell.take()), Vec::new()))
                }
                Err(GsimError::Unsupported(_)) => {
                    run_branch_div(session, sc, watch, DivKind::Peeks)
                }
                Err(e) => Err(e),
            }
        }
        DivKind::Peeks => {
            let mut rows = Vec::new();
            let obs = run_branch(session, sc, watch, Some(&mut rows))?;
            Ok((obs, None, rows))
        }
    }
}

/// Runs one scenario on `session` and collects the branch
/// observations. With `trace` supplied, the run is stepped
/// cycle-by-cycle and the watched values are recorded after every
/// cycle (the divergence-tracking slow path); otherwise the scenario
/// goes through the backend's batched [`Session::run_scenario`] fast
/// path.
fn run_branch(
    session: &mut dyn Session,
    sc: &Scenario,
    watch: &[String],
    trace: Option<&mut Vec<Vec<Value>>>,
) -> Result<BranchObservation, GsimError> {
    match trace {
        None => session.run_scenario(sc)?,
        Some(trace) => {
            for (mem, image) in &sc.loads {
                session.load_mem(mem, image)?;
            }
            for frame in &sc.frames {
                for (name, v) in frame {
                    session.poke(name, Value::from_u64(*v, 64))?;
                }
                session.step(1)?;
                let mut row = Vec::with_capacity(watch.len());
                for w in watch {
                    row.push(session.peek(w)?);
                }
                trace.push(row);
            }
        }
    }
    let mut peeks = Vec::with_capacity(watch.len());
    for w in watch {
        peeks.push((w.clone(), session.peek(w)?));
    }
    let counters = session.counters()?;
    Ok((session.cycle(), peeks, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SnapshotId;
    use crate::{SimOptions, Simulator};
    use std::sync::Mutex;

    const COUNTER: &str = r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    input inc : UInt<4>
    output out : UInt<16>
    reg c : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    when en :
      c <= tail(add(c, inc), 4)
    out <= c
"#;

    fn open(opts: SimOptions) -> Box<dyn Session + Send> {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        Box::new(Simulator::compile(&g, &opts).unwrap())
    }

    fn warmup() -> Scenario {
        Scenario::new()
            .frame(&[("reset", 1), ("en", 0), ("inc", 0)])
            .frame(&[("reset", 0), ("en", 1), ("inc", 1)])
            .repeat(3)
    }

    fn base() -> Scenario {
        Scenario::new().frame(&[("inc", 2)]).repeat(7)
    }

    /// Sequential replay: cold session + warmup + branch must equal
    /// the explored branch bit for bit (peeks and counters).
    fn replay(opts: SimOptions, branch: &Scenario) -> (Vec<(String, Value)>, Counters) {
        let mut s = open(opts);
        s.run_scenario(&warmup()).unwrap();
        s.run_scenario(branch).unwrap();
        let peeks = vec![("out".to_string(), s.peek("out").unwrap())];
        (peeks, s.counters().unwrap())
    }

    #[test]
    fn explored_branches_match_sequential_replay() {
        for opts in [SimOptions::default(), SimOptions::threaded()] {
            let mut core = open(opts);
            core.run_scenario(&warmup()).unwrap();
            let cycle0 = core.cycle();
            let report = Explorer::new(core.as_mut())
                .options(ExploreOptions {
                    workers: 3,
                    watch: vec!["out".into()],
                    ..ExploreOptions::default()
                })
                .run(
                    &base(),
                    9,
                    Some(&|b: &BranchResult| b.peeks[0].1.to_u64().unwrap() < 0x8000),
                )
                .unwrap();
            assert_eq!(report.branches.len(), 9);
            assert_eq!(report.forks, 3);
            assert_eq!(report.recoveries, 0);
            // The core came back at the fork point.
            assert_eq!(core.cycle(), cycle0);
            for (i, b) in report.branches.iter().enumerate() {
                assert_eq!(b.index, i);
                assert_eq!(b.pass, Some(true));
                assert_eq!(b.retries, 0);
                let (peeks, counters) = replay(opts, &base().perturb(i as u64));
                assert_eq!(b.peeks, peeks, "branch {i} peeks");
                assert_eq!(b.counters, counters, "branch {i} counters");
            }
            // Perturbed branches actually explore distinct states.
            let distinct: std::collections::HashSet<_> = report
                .branches
                .iter()
                .map(|b| b.peeks[0].1.to_u64().unwrap())
                .collect();
            assert!(distinct.len() > 1);
        }
    }

    #[test]
    fn divergence_cycle_is_first_observable_difference() {
        let mut core = open(SimOptions::default());
        core.run_scenario(&warmup()).unwrap();
        let cycle0 = core.cycle();
        let sc = base();
        let report = Explorer::new(core.as_mut())
            .options(ExploreOptions {
                workers: 2,
                watch: vec!["out".into()],
                divergence: true,
                ..ExploreOptions::default()
            })
            .run(&sc, 5, None)
            .unwrap();
        assert_eq!(
            report.branches[0].divergence_cycle, None,
            "branch 0 is the base"
        );
        // `out` mirrors the accumulating register as evaluated during
        // the sweep (pre-commit), so an `inc` poke that first differs
        // from the base on frame `p` — after masking to the input's 4
        // bits — becomes observable one cycle after that frame's
        // clock edge, i.e. at absolute cycle `cycle0 + p + 2` (or
        // never, if the scenario ends first).
        for b in &report.branches[1..] {
            let perturbed = sc.perturb(b.index as u64);
            let expect = sc
                .frames
                .iter()
                .zip(&perturbed.frames)
                .position(|(bf, pf)| bf[0].1 & 0xf != pf[0].1 & 0xf)
                .map(|p| cycle0 + p as u64 + 2)
                .filter(|&c| c <= cycle0 + sc.cycles());
            assert_eq!(b.divergence_cycle, expect, "branch {}", b.index);
            // The in-process backend supports capture, so each branch
            // carries its wave: time axis absolute, watched subset.
            let wave = b.wave.as_ref().expect("branch wave");
            assert_eq!(wave.signals.len(), 1);
            assert_eq!(wave.signals[0].name, "out");
            assert!(wave.changes.iter().all(|&(t, _, _)| t >= cycle0));
        }
        assert!(report.branches[0].wave.is_some(), "branch 0 keeps its wave");
    }

    /// A session wrapper that cannot fork and injects one fatal error
    /// mid-branch: exercises the sequential fallback (no recovery)
    /// and the retry path (with recovery).
    struct Flaky {
        inner: Box<dyn Session + Send>,
        fuse: &'static Mutex<i64>,
    }

    impl Session for Flaky {
        fn backend(&self) -> &'static str {
            "flaky"
        }
        fn cycle(&self) -> u64 {
            self.inner.cycle()
        }
        fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
            self.inner.poke(name, v)
        }
        fn peek(&mut self, name: &str) -> Result<Value, GsimError> {
            self.inner.peek(name)
        }
        fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError> {
            self.inner.load_mem(name, image)
        }
        fn step(&mut self, n: u64) -> Result<(), GsimError> {
            let mut fuse = self.fuse.lock().unwrap();
            *fuse -= 1;
            if *fuse == 0 {
                return Err(GsimError::SessionLost("chaos: child killed".into()));
            }
            drop(fuse);
            self.inner.step(n)
        }
        fn counters(&mut self) -> Result<Counters, GsimError> {
            self.inner.counters()
        }
        fn snapshot(&mut self) -> Result<SnapshotId, GsimError> {
            self.inner.snapshot()
        }
        fn restore(&mut self, id: SnapshotId) -> Result<(), GsimError> {
            self.inner.restore(id)
        }
        fn inputs(&mut self) -> Result<Vec<crate::SignalInfo>, GsimError> {
            self.inner.inputs()
        }
        fn signals(&mut self) -> Result<Vec<crate::SignalInfo>, GsimError> {
            self.inner.signals()
        }
        fn memories(&mut self) -> Result<Vec<crate::MemoryInfo>, GsimError> {
            self.inner.memories()
        }
    }

    #[test]
    fn fatal_mid_branch_is_retried_via_recovery() {
        static FUSE: Mutex<i64> = Mutex::new(-1);
        *FUSE.lock().unwrap() = 20; // one injected loss, mid-exploration
        let recover = || -> Result<Box<dyn Session + Send>, GsimError> {
            let mut s: Box<dyn Session + Send> = Box::new(Flaky {
                inner: open(SimOptions::default()),
                fuse: &FUSE,
            });
            s.run_scenario(&warmup())?;
            Ok(s)
        };
        let mut core = recover().unwrap();
        let report = Explorer::new(core.as_mut())
            .with_recovery(&recover)
            .options(ExploreOptions {
                workers: 2,
                watch: vec!["out".into()],
                ..ExploreOptions::default()
            })
            .run(&base(), 6, None)
            .unwrap();
        assert_eq!(report.branches.len(), 6);
        assert_eq!(report.total_retries(), 1);
        assert!(report.recoveries >= 3); // 2 pool opens + 1 retry
                                         // The retried branch still matches its sequential replay.
        for b in &report.branches {
            let (peeks, _) = replay(SimOptions::default(), &base().perturb(b.index as u64));
            assert_eq!(b.peeks, peeks, "branch {}", b.index);
        }
    }

    #[test]
    fn sequential_fallback_without_fork_or_recovery() {
        static FUSE: Mutex<i64> = Mutex::new(-1);
        let mut core: Box<dyn Session + Send> = Box::new(Flaky {
            inner: open(SimOptions::default()),
            fuse: &FUSE,
        });
        core.run_scenario(&warmup()).unwrap();
        let report = Explorer::new(core.as_mut())
            .options(ExploreOptions {
                watch: vec!["out".into()],
                ..ExploreOptions::default()
            })
            .run(&base(), 4, None)
            .unwrap();
        assert_eq!(report.branches.len(), 4);
        assert_eq!(report.workers, 1);
        assert_eq!(report.forks, 0);
        for b in &report.branches {
            let (peeks, counters) = replay(SimOptions::default(), &base().perturb(b.index as u64));
            assert_eq!(b.peeks, peeks);
            assert_eq!(b.counters, counters);
        }
    }
}
