//! Snapshot-fork scenario exploration: one warmed-up simulation,
//! fanned out into N divergent [`Scenario`] branches.
//!
//! The persistent-session work made *latency* cheap — one compile,
//! arbitrarily many interactions. This module makes *throughput*
//! cheap: an [`Explorer`] takes a session that has already been
//! warmed to an interesting state, captures that state once, and runs
//! N branch scenarios (typically a [`Scenario::perturb`] corpus)
//! across a worker pool, each branch starting from the shared
//! snapshot and evolving independently. Forking is copy-on-write
//! where the backend allows it:
//!
//! * **interp / jit** — [`crate::Simulator::fork`] shares the
//!   compiled design, the lowered threaded-code program, and every
//!   memory arena behind `Arc`s; a fork copies signal state only.
//! * **AoT** — one [`Session::export_state`] blob is imported into a
//!   pool of sibling processes spawned from the *same* compiled
//!   binary, so N branches cost one `rustc` invocation total.
//!
//! Workers snapshot their fork once and [`Session::restore`] between
//! branches, so each branch pays state-restore, not session-open.
//! Every branch is bit-pinned: running the same perturbed scenario
//! sequentially on the reference interpreter produces identical
//! peeks, and a sequential replay on the same backend produces
//! identical counters (the differential tests enforce both).
//!
//! A branch that dies mid-run (an AoT child killed under it) is
//! retried on a fresh session from the recovery factory, bounded by
//! [`ExploreOptions::max_retries`]; retries are reported per branch.

use crate::counters::Counters;
use crate::scenario::Scenario;
use crate::session::{GsimError, Session};
use gsim_value::Value;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A thread-safe factory producing fresh sessions *at the fork
/// point* (same design, same warmed-up state): the recovery path the
/// [`Explorer`] uses to replace a branch worker whose session died,
/// and the fork source for backends without
/// [`Session::clone_at_snapshot`]. For the AoT backend the cheap
/// recipe is importing a saved [`Session::export_state`] blob; for
/// in-process backends, replaying the warm-up scenario.
pub type SendSessionFactory = dyn Fn() -> Result<Box<dyn Session + Send>, GsimError> + Send + Sync;

/// Tuning knobs for one [`Explorer::run`] call.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Branch worker threads. `0` (the default) uses the host's
    /// available parallelism, capped at the branch count.
    pub workers: usize,
    /// How many times a single branch may be retried on a fresh
    /// session after a fatal (transport-class) error before the
    /// whole exploration fails.
    pub max_retries: u32,
    /// Signals recorded per branch. Empty (the default) records the
    /// portable [`Session::signals`] list.
    pub watch: Vec<String>,
    /// Track each branch's divergence cycle (first cycle its watched
    /// values differ from branch 0's). Costs a per-cycle peek per
    /// watched signal, so throughput benchmarks turn it off.
    pub divergence: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            workers: 0,
            max_retries: 2,
            watch: Vec::new(),
            divergence: false,
        }
    }
}

/// The outcome of one explored branch.
#[derive(Debug, Clone)]
pub struct BranchResult {
    /// Branch index `i` (the branch ran `base.perturb(i)`).
    pub index: usize,
    /// The session's cycle count when the branch finished.
    pub cycle: u64,
    /// Watched signal values at the end of the branch.
    pub peeks: Vec<(String, Value)>,
    /// Semantic counters at the end of the branch (cumulative since
    /// the session opened, so they are fork-invariant: a sequential
    /// replay from a cold session reports the same numbers).
    pub counters: Counters,
    /// The pass/fail predicate's verdict, when one was supplied.
    pub pass: Option<bool>,
    /// First cycle at which this branch's watched values differed
    /// from branch 0's (`None` for branch 0 itself, for branches
    /// that never diverged, or when divergence tracking is off).
    pub divergence_cycle: Option<u64>,
    /// Fatal-error retries this branch consumed (normally 0).
    pub retries: u32,
}

impl BranchResult {
    /// Renders the canonical `branch` wire line:
    /// `branch <i> <cycle> <name>=<hex>... counters <cycles>
    /// <supernode_evals> <node_evals> <value_changes>`. The service
    /// streams exactly this per branch, and the CLI prints it for
    /// local runs, so a remote exploration can be diffed textually
    /// against a local replay.
    pub fn render_wire(&self) -> String {
        let mut s = format!("branch {} {}", self.index, self.cycle);
        for (name, v) in &self.peeks {
            s.push_str(&format!(" {name}={v:x}"));
        }
        s.push_str(&format!(
            " counters {} {} {} {}",
            self.counters.cycles,
            self.counters.supernode_evals,
            self.counters.node_evals,
            self.counters.value_changes
        ));
        s
    }
}

/// Aggregate statistics for one [`Explorer::run`] call.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Per-branch results, in branch-index order.
    pub branches: Vec<BranchResult>,
    /// Worker threads used.
    pub workers: usize,
    /// Sessions obtained by [`Session::clone_at_snapshot`] on the
    /// warmed core.
    pub forks: usize,
    /// Sessions obtained from the recovery factory (pool fill-in
    /// where the backend cannot fork, plus fatal-error retries).
    pub recoveries: usize,
}

impl ExploreReport {
    /// Total fatal-error retries across all branches.
    pub fn total_retries(&self) -> u64 {
        self.branches.iter().map(|b| b.retries as u64).sum()
    }
}

/// Runs N divergent scenario branches from one shared snapshot of a
/// warmed-up session.
///
/// The core session is borrowed for the duration of the run and
/// handed back in the state it was in (forks and a snapshot/restore
/// round trip are the only operations applied to it), so a
/// long-lived interactive session — a server tenant — can explore
/// mid-flight and continue afterwards.
pub struct Explorer<'a> {
    core: &'a mut dyn Session,
    recover: Option<&'a SendSessionFactory>,
    opts: ExploreOptions,
}

impl<'a> Explorer<'a> {
    /// An explorer forking from `core`, which must already be at the
    /// state branches should start from (warmed up by the caller).
    pub fn new(core: &'a mut dyn Session) -> Explorer<'a> {
        Explorer {
            core,
            recover: None,
            opts: ExploreOptions::default(),
        }
    }

    /// Supplies the recovery factory: fresh sessions at the fork
    /// point, used to retry branches whose session died and to fill
    /// the pool on backends that cannot fork.
    pub fn with_recovery(mut self, recover: &'a SendSessionFactory) -> Explorer<'a> {
        self.recover = Some(recover);
        self
    }

    /// Replaces the option block (see [`ExploreOptions`]).
    pub fn options(mut self, opts: ExploreOptions) -> Explorer<'a> {
        self.opts = opts;
        self
    }

    /// Runs branches `0..n`, where branch `i` executes
    /// `base.perturb(i as u64)` (branch 0 is the base scenario
    /// itself), and returns per-branch results in index order.
    ///
    /// `pass` is an optional verdict predicate evaluated once per
    /// branch result.
    ///
    /// # Errors
    ///
    /// Any session error a branch run hits after its retry budget is
    /// exhausted; [`GsimError::UnknownSignal`] when a watched signal
    /// does not resolve; fork/recovery errors while building the
    /// worker pool. [`GsimError::Unsupported`] from
    /// [`Session::clone_at_snapshot`] is *not* an error — the
    /// explorer falls back to the recovery factory, or to running
    /// all branches sequentially on the core itself.
    pub fn run(
        &mut self,
        base: &Scenario,
        n: usize,
        pass: Option<&dyn Fn(&BranchResult) -> bool>,
    ) -> Result<ExploreReport, GsimError> {
        let mut report = ExploreReport {
            branches: Vec::with_capacity(n),
            workers: 0,
            forks: 0,
            recoveries: 0,
        };
        if n == 0 {
            return Ok(report);
        }
        let watch: Vec<String> = if self.opts.watch.is_empty() {
            self.core.signals()?.into_iter().map(|s| s.name).collect()
        } else {
            self.opts.watch.clone()
        };
        // Branch 0's per-cycle trace, for divergence tracking.
        let base_trace = if self.opts.divergence {
            let snap = self.core.snapshot()?;
            let mut trace = Vec::with_capacity(base.cycles() as usize);
            run_branch(self.core, base, &watch, Some(&mut trace))?;
            self.core.restore(snap)?;
            Some(trace)
        } else {
            None
        };

        // Build the worker pool: forks first, recovery fill-in, and a
        // sequential run on the core itself as the universal fallback.
        let want_workers = if self.opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.opts.workers
        }
        .min(n)
        .max(1);
        let mut pool: Vec<Box<dyn Session + Send>> = Vec::new();
        for _ in 0..want_workers {
            match self.core.clone_at_snapshot() {
                Ok(s) => {
                    report.forks += 1;
                    pool.push(s);
                }
                Err(GsimError::Unsupported(_)) => break,
                Err(e) => return Err(e),
            }
        }
        if pool.is_empty() {
            if let Some(recover) = self.recover {
                for _ in 0..want_workers {
                    pool.push(recover()?);
                    report.recoveries += 1;
                }
            }
        }

        let retry_budget = self.opts.max_retries;
        let next = AtomicUsize::new(0);
        let recoveries = AtomicUsize::new(0);
        let recover = self.recover;
        let base_trace = base_trace.as_deref();

        let mut results: Vec<BranchResult> = if pool.is_empty() {
            // No fork support and no recovery factory: run every
            // branch on the core, snapshot/restore between branches.
            report.workers = 1;
            let snap = self.core.snapshot()?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let sc = base.perturb(i as u64);
                let mut trace = Vec::new();
                let (cycle, peeks, counters) =
                    run_branch(self.core, &sc, &watch, base_trace.map(|_| &mut trace))?;
                out.push(finish_branch(
                    i, cycle, peeks, counters, 0, base_trace, &trace,
                ));
                self.core.restore(snap)?;
            }
            out
        } else {
            report.workers = pool.len();
            let watch = &watch;
            let worker =
                |mut session: Box<dyn Session + Send>| -> Result<Vec<BranchResult>, GsimError> {
                    let mut snap = session.snapshot()?;
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return Ok(out);
                        }
                        let sc = base.perturb(i as u64);
                        let mut retries = 0u32;
                        loop {
                            let mut trace = Vec::new();
                            let attempt = session.restore(snap).and_then(|()| {
                                run_branch(
                                    session.as_mut(),
                                    &sc,
                                    watch,
                                    base_trace.map(|_| &mut trace),
                                )
                            });
                            match attempt {
                                Ok((cycle, peeks, counters)) => {
                                    out.push(finish_branch(
                                        i, cycle, peeks, counters, retries, base_trace, &trace,
                                    ));
                                    break;
                                }
                                Err(e) if e.is_fatal() && retries < retry_budget => {
                                    let Some(recover) = recover else {
                                        return Err(e);
                                    };
                                    session = recover()?;
                                    snap = session.snapshot()?;
                                    recoveries.fetch_add(1, Ordering::Relaxed);
                                    retries += 1;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    }
                };
            let per_worker: Vec<Result<Vec<BranchResult>, GsimError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = pool
                        .into_iter()
                        .map(|session| scope.spawn(|| worker(session)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("explore worker panicked"))
                        .collect()
                });
            let mut all = Vec::with_capacity(n);
            for r in per_worker {
                all.extend(r?);
            }
            all
        };
        report.recoveries += recoveries.load(Ordering::Relaxed);
        results.sort_by_key(|b| b.index);
        if let Some(pass) = pass {
            for b in &mut results {
                b.pass = Some(pass(b));
            }
        }
        report.branches = results;
        Ok(report)
    }
}

/// Builds one [`BranchResult`], computing the divergence cycle from
/// the branch's recorded trace against branch 0's.
fn finish_branch(
    index: usize,
    cycle: u64,
    peeks: Vec<(String, Value)>,
    counters: Counters,
    retries: u32,
    base_trace: Option<&[Vec<Value>]>,
    trace: &[Vec<Value>],
) -> BranchResult {
    let divergence_cycle = base_trace.and_then(|base| {
        trace
            .iter()
            .zip(base)
            .position(|(a, b)| a != b)
            .map(|c| c as u64)
    });
    BranchResult {
        index,
        cycle,
        peeks,
        counters,
        pass: None,
        divergence_cycle,
        retries,
    }
}

/// What [`run_branch`] observes: the session's end cycle, the
/// watched peeks, and the cumulative counters.
type BranchObservation = (u64, Vec<(String, Value)>, Counters);

/// Runs one scenario on `session` and collects the branch
/// observations. With `trace` supplied, the run is stepped
/// cycle-by-cycle and the watched values are recorded after every
/// cycle (the divergence-tracking slow path); otherwise the scenario
/// goes through the backend's batched [`Session::run_scenario`] fast
/// path.
fn run_branch(
    session: &mut dyn Session,
    sc: &Scenario,
    watch: &[String],
    trace: Option<&mut Vec<Vec<Value>>>,
) -> Result<BranchObservation, GsimError> {
    match trace {
        None => session.run_scenario(sc)?,
        Some(trace) => {
            for (mem, image) in &sc.loads {
                session.load_mem(mem, image)?;
            }
            for frame in &sc.frames {
                for (name, v) in frame {
                    session.poke(name, Value::from_u64(*v, 64))?;
                }
                session.step(1)?;
                let mut row = Vec::with_capacity(watch.len());
                for w in watch {
                    row.push(session.peek(w)?);
                }
                trace.push(row);
            }
        }
    }
    let mut peeks = Vec::with_capacity(watch.len());
    for w in watch {
        peeks.push((w.clone(), session.peek(w)?));
    }
    let counters = session.counters()?;
    Ok((session.cycle(), peeks, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SnapshotId;
    use crate::{SimOptions, Simulator};
    use std::sync::Mutex;

    const COUNTER: &str = r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    input inc : UInt<4>
    output out : UInt<16>
    reg c : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    when en :
      c <= tail(add(c, inc), 4)
    out <= c
"#;

    fn open(opts: SimOptions) -> Box<dyn Session + Send> {
        let g = gsim_firrtl::compile(COUNTER).unwrap();
        Box::new(Simulator::compile(&g, &opts).unwrap())
    }

    fn warmup() -> Scenario {
        Scenario::new()
            .frame(&[("reset", 1), ("en", 0), ("inc", 0)])
            .frame(&[("reset", 0), ("en", 1), ("inc", 1)])
            .repeat(3)
    }

    fn base() -> Scenario {
        Scenario::new().frame(&[("inc", 2)]).repeat(7)
    }

    /// Sequential replay: cold session + warmup + branch must equal
    /// the explored branch bit for bit (peeks and counters).
    fn replay(opts: SimOptions, branch: &Scenario) -> (Vec<(String, Value)>, Counters) {
        let mut s = open(opts);
        s.run_scenario(&warmup()).unwrap();
        s.run_scenario(branch).unwrap();
        let peeks = vec![("out".to_string(), s.peek("out").unwrap())];
        (peeks, s.counters().unwrap())
    }

    #[test]
    fn explored_branches_match_sequential_replay() {
        for opts in [SimOptions::default(), SimOptions::threaded()] {
            let mut core = open(opts);
            core.run_scenario(&warmup()).unwrap();
            let cycle0 = core.cycle();
            let report = Explorer::new(core.as_mut())
                .options(ExploreOptions {
                    workers: 3,
                    watch: vec!["out".into()],
                    ..ExploreOptions::default()
                })
                .run(
                    &base(),
                    9,
                    Some(&|b: &BranchResult| b.peeks[0].1.to_u64().unwrap() < 0x8000),
                )
                .unwrap();
            assert_eq!(report.branches.len(), 9);
            assert_eq!(report.forks, 3);
            assert_eq!(report.recoveries, 0);
            // The core came back at the fork point.
            assert_eq!(core.cycle(), cycle0);
            for (i, b) in report.branches.iter().enumerate() {
                assert_eq!(b.index, i);
                assert_eq!(b.pass, Some(true));
                assert_eq!(b.retries, 0);
                let (peeks, counters) = replay(opts, &base().perturb(i as u64));
                assert_eq!(b.peeks, peeks, "branch {i} peeks");
                assert_eq!(b.counters, counters, "branch {i} counters");
            }
            // Perturbed branches actually explore distinct states.
            let distinct: std::collections::HashSet<_> = report
                .branches
                .iter()
                .map(|b| b.peeks[0].1.to_u64().unwrap())
                .collect();
            assert!(distinct.len() > 1);
        }
    }

    #[test]
    fn divergence_cycle_is_first_observable_difference() {
        let mut core = open(SimOptions::default());
        core.run_scenario(&warmup()).unwrap();
        let sc = base();
        let report = Explorer::new(core.as_mut())
            .options(ExploreOptions {
                workers: 2,
                watch: vec!["out".into()],
                divergence: true,
                ..ExploreOptions::default()
            })
            .run(&sc, 5, None)
            .unwrap();
        assert_eq!(
            report.branches[0].divergence_cycle, None,
            "branch 0 is the base"
        );
        // `out` mirrors the accumulating register as evaluated during
        // the sweep (pre-commit), so an `inc` poke that first differs
        // from the base on frame `p` — after masking to the input's 4
        // bits — becomes observable one cycle later, at trace row
        // `p + 1` (or never, if the scenario ends first).
        for b in &report.branches[1..] {
            let perturbed = sc.perturb(b.index as u64);
            let expect = sc
                .frames
                .iter()
                .zip(&perturbed.frames)
                .position(|(bf, pf)| bf[0].1 & 0xf != pf[0].1 & 0xf)
                .map(|p| p as u64 + 1)
                .filter(|&c| c < sc.cycles());
            assert_eq!(b.divergence_cycle, expect, "branch {}", b.index);
        }
    }

    /// A session wrapper that cannot fork and injects one fatal error
    /// mid-branch: exercises the sequential fallback (no recovery)
    /// and the retry path (with recovery).
    struct Flaky {
        inner: Box<dyn Session + Send>,
        fuse: &'static Mutex<i64>,
    }

    impl Session for Flaky {
        fn backend(&self) -> &'static str {
            "flaky"
        }
        fn cycle(&self) -> u64 {
            self.inner.cycle()
        }
        fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
            self.inner.poke(name, v)
        }
        fn peek(&mut self, name: &str) -> Result<Value, GsimError> {
            self.inner.peek(name)
        }
        fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError> {
            self.inner.load_mem(name, image)
        }
        fn step(&mut self, n: u64) -> Result<(), GsimError> {
            let mut fuse = self.fuse.lock().unwrap();
            *fuse -= 1;
            if *fuse == 0 {
                return Err(GsimError::SessionLost("chaos: child killed".into()));
            }
            drop(fuse);
            self.inner.step(n)
        }
        fn counters(&mut self) -> Result<Counters, GsimError> {
            self.inner.counters()
        }
        fn snapshot(&mut self) -> Result<SnapshotId, GsimError> {
            self.inner.snapshot()
        }
        fn restore(&mut self, id: SnapshotId) -> Result<(), GsimError> {
            self.inner.restore(id)
        }
        fn inputs(&mut self) -> Result<Vec<crate::SignalInfo>, GsimError> {
            self.inner.inputs()
        }
        fn signals(&mut self) -> Result<Vec<crate::SignalInfo>, GsimError> {
            self.inner.signals()
        }
        fn memories(&mut self) -> Result<Vec<crate::MemoryInfo>, GsimError> {
            self.inner.memories()
        }
    }

    #[test]
    fn fatal_mid_branch_is_retried_via_recovery() {
        static FUSE: Mutex<i64> = Mutex::new(-1);
        *FUSE.lock().unwrap() = 20; // one injected loss, mid-exploration
        let recover = || -> Result<Box<dyn Session + Send>, GsimError> {
            let mut s: Box<dyn Session + Send> = Box::new(Flaky {
                inner: open(SimOptions::default()),
                fuse: &FUSE,
            });
            s.run_scenario(&warmup())?;
            Ok(s)
        };
        let mut core = recover().unwrap();
        let report = Explorer::new(core.as_mut())
            .with_recovery(&recover)
            .options(ExploreOptions {
                workers: 2,
                watch: vec!["out".into()],
                ..ExploreOptions::default()
            })
            .run(&base(), 6, None)
            .unwrap();
        assert_eq!(report.branches.len(), 6);
        assert_eq!(report.total_retries(), 1);
        assert!(report.recoveries >= 3); // 2 pool opens + 1 retry
                                         // The retried branch still matches its sequential replay.
        for b in &report.branches {
            let (peeks, _) = replay(SimOptions::default(), &base().perturb(b.index as u64));
            assert_eq!(b.peeks, peeks, "branch {}", b.index);
        }
    }

    #[test]
    fn sequential_fallback_without_fork_or_recovery() {
        static FUSE: Mutex<i64> = Mutex::new(-1);
        let mut core: Box<dyn Session + Send> = Box::new(Flaky {
            inner: open(SimOptions::default()),
            fuse: &FUSE,
        });
        core.run_scenario(&warmup()).unwrap();
        let report = Explorer::new(core.as_mut())
            .options(ExploreOptions {
                watch: vec!["out".into()],
                ..ExploreOptions::default()
            })
            .run(&base(), 4, None)
            .unwrap();
        assert_eq!(report.branches.len(), 4);
        assert_eq!(report.workers, 1);
        assert_eq!(report.forks, 0);
        for b in &report.branches {
            let (peeks, counters) = replay(SimOptions::default(), &base().perturb(b.index as u64));
            assert_eq!(b.peeks, peeks);
            assert_eq!(b.counters, counters);
        }
    }
}
