//! The bytecode interpreter.
//!
//! The hot path executes the flat execution image ([`crate::image`]):
//! tasks whose encoded units are all *narrow* (every operand fits one
//! word — the overwhelming majority of RTL signals) run on
//! [`run_narrow`], a dispatch loop that never re-checks operand word
//! counts; tasks containing any multi-word unit run on [`run_general`],
//! which additionally resolves [`Op::Wide`] units through the image's
//! side table into the mid-level [`Instr`] interpreter ([`run_instrs`]/
//! `exec_one`). The mid-level interpreter keeps the per-instruction
//! narrow/wide split and the stack-buffered [`gsim_value::words`]
//! kernels — including allocation-free wide division, which spills to
//! the heap only above [`STACK_WORDS`] (2048 bits).
//!
//! The interpreter is generic over [`StateStore`]/[`MemStore`] so the
//! same code runs single-threaded (plain slices) and multithreaded
//! (relaxed atomics with barrier-ordered levels).

use crate::compile::{BinOp, Instr, UnOp};
use crate::image::{EInstr, ExecImage, Op, META_SIGNED, OFF_MASK, SPACE_SHIFT};
use crate::storage::{MemArena, Slot, Space, StateStore};
use gsim_value::{words, words_for};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Stack buffer size for wide operations (2048 bits). Wider values take
/// a heap fallback.
const STACK_WORDS: usize = 32;

/// Read access to simulated memories during the combinational sweep.
pub(crate) trait MemStore {
    /// Copies entry `addr` of memory `mem` into `dst` (zero when out of
    /// range); `dst` is exactly the entry's word count.
    fn read_entry(&self, mem: u32, addr: u64, dst: &mut [u64]);
}

impl MemStore for &[MemArena] {
    #[inline]
    fn read_entry(&self, mem: u32, addr: u64, dst: &mut [u64]) {
        match self[mem as usize].entry(addr) {
            Some(words) => dst.copy_from_slice(words),
            None => dst.fill(0),
        }
    }
}

/// Atomic memory arena used by the multithreaded engine.
pub(crate) struct AtomicMems {
    pub arenas: Vec<AtomicMem>,
}

/// One atomic memory.
pub(crate) struct AtomicMem {
    pub depth: u64,
    pub width: u32,
    pub words_per_entry: usize,
    pub data: Vec<AtomicU64>,
}

impl AtomicMems {
    /// Snapshots `mems` into a shared atomic image for a parallel run,
    /// copying each arena's flat word storage wholesale.
    pub(crate) fn snapshot(mems: &[MemArena]) -> AtomicMems {
        AtomicMems {
            arenas: mems
                .iter()
                .map(|m| AtomicMem {
                    depth: m.depth,
                    width: m.width,
                    words_per_entry: m.words_per_entry(),
                    data: m.words().iter().map(|&w| AtomicU64::new(w)).collect(),
                })
                .collect(),
        }
    }

    /// Copies the image back into `mems` after a parallel run — one
    /// linear pass per arena, no per-entry address lookups.
    pub(crate) fn copy_back(&self, mems: &mut [MemArena]) {
        for (arena, src) in mems.iter_mut().zip(&self.arenas) {
            debug_assert_eq!(arena.words().len(), src.data.len());
            for (w, cell) in arena.words_mut().iter_mut().zip(&src.data) {
                *w = cell.load(AtomicOrdering::Relaxed);
            }
        }
    }
}

impl MemStore for &AtomicMems {
    #[inline]
    fn read_entry(&self, mem: u32, addr: u64, dst: &mut [u64]) {
        let m = &self.arenas[mem as usize];
        if addr >= m.depth {
            dst.fill(0);
            return;
        }
        let base = addr as usize * m.words_per_entry;
        for (i, d) in dst.iter_mut().enumerate() {
            *d = m.data[base + i].load(AtomicOrdering::Relaxed);
        }
    }
}

/// Execution context: arenas the interpreter reads and writes.
pub(crate) struct Ctx<'a, S, M> {
    pub state: S,
    pub scratch: &'a mut [u64],
    pub consts: &'a [u64],
    pub mems: M,
}

impl<S: StateStore, M: MemStore> Ctx<'_, S, M> {
    /// First word of a slot (0 for zero-width).
    #[inline]
    fn word(&self, r: Slot) -> u64 {
        if r.words == 0 {
            return 0;
        }
        match r.space {
            Space::State => self.state.load(r.off as usize),
            Space::Scratch => self.scratch[r.off as usize],
            Space::Const => self.consts[r.off as usize],
        }
    }

    /// Canonical read into `buf` (zero-filled above the slot's words).
    #[inline]
    fn read_into(&self, r: Slot, buf: &mut [u64]) {
        let n = r.words as usize;
        match r.space {
            Space::State => {
                for (i, b) in buf.iter_mut().take(n).enumerate() {
                    *b = self.state.load(r.off as usize + i);
                }
            }
            Space::Scratch => {
                buf[..n].copy_from_slice(&self.scratch[r.off as usize..r.off as usize + n])
            }
            Space::Const => {
                buf[..n].copy_from_slice(&self.consts[r.off as usize..r.off as usize + n])
            }
        }
        for b in buf.iter_mut().skip(n) {
            *b = 0;
        }
    }

    /// Read extended to the full buffer: sign-filled when the slot is
    /// signed, zero-filled otherwise.
    #[inline]
    fn read_ext(&self, r: Slot, buf: &mut [u64]) {
        self.read_into(r, buf);
        if r.signed && r.width > 0 && words::get_bit(buf, r.width - 1) {
            // fill bits above width with ones
            let full = (r.width / 64) as usize;
            let rem = r.width % 64;
            if rem != 0 && full < buf.len() {
                buf[full] |= !((1u64 << rem) - 1);
            }
            for b in buf.iter_mut().skip(full + usize::from(rem != 0)) {
                *b = u64::MAX;
            }
        }
    }

    /// Single-word value sign-extended to 64 bits when signed.
    #[inline]
    fn word_ext(&self, r: Slot) -> u64 {
        let v = self.word(r);
        if r.signed && r.width > 0 && r.width < 64 {
            let sh = 64 - r.width;
            (((v << sh) as i64) >> sh) as u64
        } else {
            v
        }
    }

    /// Address-style read: saturates when high words are set.
    #[inline]
    fn word_sat(&self, r: Slot) -> u64 {
        let first = self.word(r);
        if r.words <= 1 {
            return first;
        }
        let mut buf = [0u64; STACK_WORDS];
        if (r.words as usize) <= STACK_WORDS {
            self.read_into(r, &mut buf[..r.words as usize]);
            if buf[1..r.words as usize].iter().any(|&w| w != 0) {
                return u64::MAX;
            }
            return buf[0];
        }
        first // conservatively: engines never index memories this wide
    }

    /// Writes a single-word value, masking to the slot width.
    #[inline]
    fn write1(&mut self, r: Slot, v: u64) {
        if r.words == 0 {
            return;
        }
        let masked = if r.width >= 64 {
            v
        } else {
            v & ((1u64 << r.width) - 1)
        };
        match r.space {
            Space::State => self.state.store(r.off as usize, masked),
            Space::Scratch => self.scratch[r.off as usize] = masked,
            Space::Const => unreachable!("write to const pool"),
        }
        for i in 1..r.words as usize {
            match r.space {
                Space::State => self.state.store(r.off as usize + i, 0),
                Space::Scratch => self.scratch[r.off as usize + i] = 0,
                Space::Const => unreachable!(),
            }
        }
    }

    /// Writes `buf` (at least `r.words` long), masking to the width.
    #[inline]
    fn write_words(&mut self, r: Slot, buf: &mut [u64]) {
        let n = r.words as usize;
        words::mask_in_place(&mut buf[..n], r.width.min(n as u32 * 64));
        match r.space {
            Space::State => {
                for (i, b) in buf.iter().take(n).enumerate() {
                    self.state.store(r.off as usize + i, *b);
                }
            }
            Space::Scratch => {
                self.scratch[r.off as usize..r.off as usize + n].copy_from_slice(&buf[..n])
            }
            Space::Const => unreachable!("write to const pool"),
        }
    }

    // ----- packed-reference accessors for the encoded interpreter -----

    /// Reads the word behind a packed operand reference. Zero-width
    /// operands were remapped to the const zero word at encode time, so
    /// there is no zero-width guard here.
    #[inline(always)]
    fn pw(&self, p: u32) -> u64 {
        let off = (p & OFF_MASK) as usize;
        match p >> SPACE_SHIFT {
            0 => self.state.load(off),
            1 => self.scratch[off],
            _ => self.consts[off],
        }
    }

    /// Packed read sign-extended to 64 bits per the operand meta byte.
    #[inline(always)]
    fn pw_ext(&self, p: u32, meta: u8) -> u64 {
        let v = self.pw(p);
        let w = (meta & !META_SIGNED) as u32;
        if meta >= META_SIGNED && w < 64 {
            let sh = 64 - w;
            (((v << sh) as i64) >> sh) as u64
        } else {
            v
        }
    }

    /// Packed single-word write, masked to the destination width `w`.
    #[inline(always)]
    fn pw_write(&mut self, p: u32, w: u8, v: u64) {
        let masked = if w >= 64 { v } else { v & ((1u64 << w) - 1) };
        let off = (p & OFF_MASK) as usize;
        match p >> SPACE_SHIFT {
            0 => self.state.store(off, masked),
            _ => self.scratch[off] = masked,
        }
    }
}

#[inline]
fn lowmask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else if w == 0 {
        0
    } else {
        (1u64 << w) - 1
    }
}

/// Executes one task's encoded code range from the execution image,
/// dispatching to the narrow-only fast loop or the general loop.
#[inline]
pub(crate) fn run_task<S: StateStore, M: MemStore>(
    ctx: &mut Ctx<'_, S, M>,
    img: &ExecImage,
    code: (u32, u32),
    narrow_only: bool,
) {
    let code = &img.code[code.0 as usize..code.1 as usize];
    if narrow_only {
        run_narrow(ctx, code);
    } else {
        run_general(ctx, code, &img.wide);
    }
}

/// The narrow-only dispatch loop: every operand is a single word, so no
/// arm ever checks word counts or takes a buffer.
pub(crate) fn run_narrow<S: StateStore, M: MemStore>(ctx: &mut Ctx<'_, S, M>, code: &[EInstr]) {
    exec_encoded::<S, M, false>(ctx, code, &[]);
}

/// The general dispatch loop: narrow arms plus [`Op::Wide`] units
/// resolved through the image's side table.
pub(crate) fn run_general<S: StateStore, M: MemStore>(
    ctx: &mut Ctx<'_, S, M>,
    code: &[EInstr],
    wide: &[Instr],
) {
    exec_encoded::<S, M, true>(ctx, code, wide);
}

/// Shared body of the two dispatch loops, monomorphized on whether wide
/// units can occur.
#[inline(always)]
fn exec_encoded<S: StateStore, M: MemStore, const HAS_WIDE: bool>(
    ctx: &mut Ctx<'_, S, M>,
    code: &[EInstr],
    wide: &[Instr],
) {
    let mut i = 0usize;
    while i < code.len() {
        let ins = code[i];
        i += 1;
        match ins.op {
            Op::Add => {
                let v = ctx
                    .pw_ext(ins.a, ins.xa)
                    .wrapping_add(ctx.pw_ext(ins.b, ins.xb));
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Sub => {
                let v = ctx
                    .pw_ext(ins.a, ins.xa)
                    .wrapping_sub(ctx.pw_ext(ins.b, ins.xb));
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Mul => {
                let v = ctx
                    .pw_ext(ins.a, ins.xa)
                    .wrapping_mul(ctx.pw_ext(ins.b, ins.xb));
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Div => {
                let av = ctx.pw_ext(ins.a, ins.xa);
                let bv = ctx.pw_ext(ins.b, ins.xb);
                let v = if bv == 0 {
                    0
                } else if ins.xa >= META_SIGNED {
                    ((av as i64 as i128) / (bv as i64 as i128)) as u64
                } else {
                    av / bv
                };
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Rem => {
                let av = ctx.pw_ext(ins.a, ins.xa);
                let bv = ctx.pw_ext(ins.b, ins.xb);
                let v = if bv == 0 {
                    av
                } else if ins.xa >= META_SIGNED {
                    ((av as i64 as i128) % (bv as i64 as i128)) as u64
                } else {
                    av % bv
                };
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Lt | Op::Leq | Op::Gt | Op::Geq => {
                let ord = encoded_cmp(ctx, &ins);
                let v = match ins.op {
                    Op::Lt => ord.is_lt(),
                    Op::Leq => ord.is_le(),
                    Op::Gt => ord.is_gt(),
                    _ => ord.is_ge(),
                };
                ctx.pw_write(ins.dst, ins.xd, v as u64);
            }
            Op::Eq => {
                let v = ctx.pw_ext(ins.a, ins.xa) == ctx.pw_ext(ins.b, ins.xb);
                ctx.pw_write(ins.dst, ins.xd, v as u64);
            }
            Op::Neq => {
                let v = ctx.pw_ext(ins.a, ins.xa) != ctx.pw_ext(ins.b, ins.xb);
                ctx.pw_write(ins.dst, ins.xd, v as u64);
            }
            Op::And => {
                let v = ctx.pw_ext(ins.a, ins.xa) & ctx.pw_ext(ins.b, ins.xb);
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Or => {
                let v = ctx.pw_ext(ins.a, ins.xa) | ctx.pw_ext(ins.b, ins.xb);
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Xor => {
                let v = ctx.pw_ext(ins.a, ins.xa) ^ ctx.pw_ext(ins.b, ins.xb);
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Dshl => {
                let sh = ctx.pw_ext(ins.b, ins.xb);
                let v = if sh >= 64 { 0 } else { ctx.pw(ins.a) << sh };
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Dshr => {
                let sh = ctx.pw_ext(ins.b, ins.xb);
                let v = if ins.xa >= META_SIGNED {
                    ((ctx.pw_ext(ins.a, ins.xa) as i64) >> sh.min(63)) as u64
                } else if sh >= 64 {
                    0
                } else {
                    ctx.pw(ins.a) >> sh
                };
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Not => {
                let v = !ctx.pw(ins.a);
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Andr => {
                let v = ctx.pw(ins.a) == lowmask((ins.xa & !META_SIGNED) as u32);
                ctx.pw_write(ins.dst, ins.xd, v as u64);
            }
            Op::Orr => {
                let v = ctx.pw(ins.a) != 0;
                ctx.pw_write(ins.dst, ins.xd, v as u64);
            }
            Op::Xorr => {
                let v = (ctx.pw(ins.a).count_ones() % 2) as u64;
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Neg => {
                let v = ctx.pw_ext(ins.a, ins.xa).wrapping_neg();
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Shl => {
                let v = if ins.b >= 64 {
                    0
                } else {
                    ctx.pw(ins.a) << ins.b
                };
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Shr => {
                let v = if ins.xa >= META_SIGNED {
                    ((ctx.pw_ext(ins.a, ins.xa) as i64) >> ins.b.min(63)) as u64
                } else if ins.b >= 64 {
                    0
                } else {
                    ctx.pw(ins.a) >> ins.b
                };
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Bits => {
                let v = ctx.pw(ins.a) >> ins.b.min(63);
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Copy => {
                let v = ctx.pw(ins.a);
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Sext => {
                // `xa` carries a forced sign bit.
                let v = ctx.pw_ext(ins.a, ins.xa);
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Mux => {
                let ext = code[i];
                i += 1;
                let v = if ctx.pw(ins.a) != 0 {
                    ctx.pw_ext(ins.b, ins.xb)
                } else {
                    ctx.pw_ext(ext.a, ext.xa)
                };
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Cat => {
                let sh = ins.xb as u32;
                let vb = ctx.pw(ins.b);
                let v = if sh >= 64 {
                    vb
                } else {
                    (ctx.pw(ins.a) << sh) | vb
                };
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::CatImm => {
                let v = (ctx.pw(ins.a) << ins.xb) | ins.b as u64;
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::ReadMem => {
                let mut entry = [0u64; 1];
                let addr = ctx.pw(ins.a);
                ctx.mems.read_entry(ins.b, addr, &mut entry);
                ctx.pw_write(ins.dst, ins.xd, entry[0]);
            }
            Op::CmpMuxLt
            | Op::CmpMuxLeq
            | Op::CmpMuxGt
            | Op::CmpMuxGeq
            | Op::CmpMuxEq
            | Op::CmpMuxNeq => {
                let ord = encoded_cmp(ctx, &ins);
                let take_t = match ins.op {
                    Op::CmpMuxLt => ord.is_lt(),
                    Op::CmpMuxLeq => ord.is_le(),
                    Op::CmpMuxGt => ord.is_gt(),
                    Op::CmpMuxGeq => ord.is_ge(),
                    Op::CmpMuxEq => ord.is_eq(),
                    _ => ord.is_ne(),
                };
                let ext = code[i];
                i += 1;
                let v = if take_t {
                    ctx.pw_ext(ext.a, ext.xa)
                } else {
                    ctx.pw_ext(ext.b, ext.xb)
                };
                ctx.pw_write(ins.dst, ins.xd, v);
            }
            Op::Ext => unreachable!("extension unit dispatched directly"),
            Op::Wide => {
                if HAS_WIDE {
                    exec_one(ctx, &wide[ins.a as usize]);
                } else {
                    unreachable!("wide unit in a narrow-only task");
                }
            }
        }
    }
}

/// Single-word comparison of an encoded unit's `a`/`b` operands,
/// signedness per operand `a`'s meta byte.
#[inline(always)]
fn encoded_cmp<S: StateStore, M: MemStore>(ctx: &Ctx<'_, S, M>, ins: &EInstr) -> Ordering {
    let av = ctx.pw_ext(ins.a, ins.xa);
    let bv = ctx.pw_ext(ins.b, ins.xb);
    if ins.xa >= META_SIGNED {
        (av as i64).cmp(&(bv as i64))
    } else {
        av.cmp(&bv)
    }
}

/// Executes a mid-level instruction stream — the reference path for
/// unit tests (the engines go through the encoded image; wide units
/// dispatch straight to `exec_one`).
#[cfg(test)]
pub(crate) fn run_instrs<S: StateStore, M: MemStore>(ctx: &mut Ctx<'_, S, M>, instrs: &[Instr]) {
    for instr in instrs {
        exec_one(ctx, instr);
    }
}

fn narrow3(a: Slot, b: Slot, dst: Slot) -> bool {
    a.words <= 1 && b.words <= 1 && dst.words <= 1
}

pub(crate) fn exec_one<S: StateStore, M: MemStore>(ctx: &mut Ctx<'_, S, M>, instr: &Instr) {
    match *instr {
        Instr::Copy { dst, a } => {
            if dst.words <= 1 && a.words <= 1 {
                let v = ctx.word(a);
                ctx.write1(dst, v);
            } else {
                let mut buf = wide_buf(dst.words);
                let n = dst.words as usize;
                // canonical read, truncating or zero-extending
                let mut src = wide_buf(a.words.max(dst.words));
                ctx.read_into(a, src.as_mut());
                buf.as_mut()[..n].copy_from_slice(&src.as_ref()[..n]);
                ctx.write_words(dst, buf.as_mut());
            }
        }
        Instr::Sext { dst, a } => {
            if dst.words <= 1 && a.words <= 1 {
                let v = ctx.word_ext(Slot { signed: true, ..a });
                ctx.write1(dst, v);
            } else {
                let mut src = wide_buf(a.words);
                ctx.read_into(a, src.as_mut());
                let mut buf = wide_buf(dst.words);
                words::sext_copy(
                    &mut buf.as_mut()[..dst.words as usize],
                    &src.as_ref()[..a.words as usize],
                    a.width,
                    dst.width,
                );
                ctx.write_words(dst, buf.as_mut());
            }
        }
        Instr::Bin { op, dst, a, b } => exec_bin(ctx, op, dst, a, b),
        Instr::Un { op, dst, a, imm } => exec_un(ctx, op, dst, a, imm),
        Instr::Mux { dst, sel, t, f } => {
            let take_t = if sel.words <= 1 {
                ctx.word(sel) != 0
            } else {
                let mut buf = wide_buf(sel.words);
                ctx.read_into(sel, buf.as_mut());
                !words::is_zero(&buf.as_ref()[..sel.words as usize])
            };
            write_select(ctx, dst, if take_t { t } else { f });
        }
        Instr::CmpMux {
            cmp,
            dst,
            a,
            b,
            t,
            f,
        } => {
            let take_t = cmp_slots(ctx, cmp, a, b);
            write_select(ctx, dst, if take_t { t } else { f });
        }
        Instr::CatImm { dst, a, imm, shift } => {
            // Fusion only forms narrow cat-of-const instructions.
            debug_assert!(dst.words <= 1 && shift < 64);
            let v = (ctx.word(a) << shift) | imm;
            ctx.write1(dst, v);
        }
        Instr::Cat { dst, a, b } => {
            if dst.words <= 1 {
                let v = (ctx.word(a) << b.width) | ctx.word(b);
                ctx.write1(dst, v);
            } else {
                let mut av = wide_buf(a.words);
                ctx.read_into(a, av.as_mut());
                let mut bv = wide_buf(b.words);
                ctx.read_into(b, bv.as_mut());
                let mut buf = wide_buf(dst.words);
                words::cat(
                    &mut buf.as_mut()[..dst.words as usize],
                    &av.as_ref()[..a.words as usize],
                    &bv.as_ref()[..b.words as usize],
                    b.width,
                );
                ctx.write_words(dst, buf.as_mut());
            }
        }
        Instr::ReadMem { dst, mem, addr } => {
            let a = ctx.word_sat(addr);
            let mut buf = wide_buf(dst.words);
            ctx.mems
                .read_entry(mem, a, &mut buf.as_mut()[..dst.words as usize]);
            ctx.write_words(dst, buf.as_mut());
        }
    }
}

fn exec_bin<S: StateStore, M: MemStore>(
    ctx: &mut Ctx<'_, S, M>,
    op: BinOp,
    dst: Slot,
    a: Slot,
    b: Slot,
) {
    let signed = a.signed;
    if narrow3(a, b, dst) {
        let av = ctx.word_ext(a);
        let bv = ctx.word_ext(b);
        let v = match op {
            BinOp::Add => av.wrapping_add(bv),
            BinOp::Sub => av.wrapping_sub(bv),
            BinOp::Mul => av.wrapping_mul(bv),
            BinOp::Div => {
                if bv == 0 {
                    0
                } else if signed {
                    ((av as i64 as i128) / (bv as i64 as i128)) as u64
                } else {
                    av / bv
                }
            }
            BinOp::Rem => {
                if bv == 0 {
                    av
                } else if signed {
                    ((av as i64 as i128) % (bv as i64 as i128)) as u64
                } else {
                    av % bv
                }
            }
            BinOp::Lt => cmp_narrow(av, bv, signed, Ordering::is_lt),
            BinOp::Leq => cmp_narrow(av, bv, signed, Ordering::is_le),
            BinOp::Gt => cmp_narrow(av, bv, signed, Ordering::is_gt),
            BinOp::Geq => cmp_narrow(av, bv, signed, Ordering::is_ge),
            BinOp::Eq => (av == bv) as u64,
            BinOp::Neq => (av != bv) as u64,
            BinOp::And => av & bv,
            BinOp::Or => av | bv,
            BinOp::Xor => av ^ bv,
            BinOp::Dshl => {
                let sh = bv; // b is unsigned
                if sh >= 64 {
                    0
                } else {
                    ctx.word(a) << sh
                }
            }
            BinOp::Dshr => {
                let sh = bv;
                if signed {
                    let ext = ctx.word_ext(a) as i64;
                    (ext >> sh.min(63)) as u64
                } else if sh >= 64 {
                    0
                } else {
                    ctx.word(a) >> sh
                }
            }
        };
        ctx.write1(dst, v);
        return;
    }
    exec_bin_wide(ctx, op, dst, a, b);
}

#[inline]
fn cmp_narrow(av: u64, bv: u64, signed: bool, pick: impl Fn(Ordering) -> bool) -> u64 {
    let ord = if signed {
        (av as i64).cmp(&(bv as i64))
    } else {
        av.cmp(&bv)
    };
    pick(ord) as u64
}

/// Evaluates a comparison between two slots of any width (signedness
/// from operand `a`, as everywhere in the interpreter).
fn cmp_slots<S: StateStore, M: MemStore>(ctx: &Ctx<'_, S, M>, op: BinOp, a: Slot, b: Slot) -> bool {
    let signed = a.signed;
    let ord = if a.words <= 1 && b.words <= 1 {
        let av = ctx.word_ext(a);
        let bv = ctx.word_ext(b);
        if signed {
            (av as i64).cmp(&(bv as i64))
        } else {
            av.cmp(&bv)
        }
    } else {
        let n = a.words.max(b.words).max(1) as usize;
        let mut av = wide_buf(n as u16);
        let mut bv = wide_buf(n as u16);
        ctx.read_ext(a, av.as_mut());
        ctx.read_ext(b, bv.as_mut());
        if signed {
            words::scmp_extended(&av.as_ref()[..n], &bv.as_ref()[..n])
        } else {
            words::ucmp(&av.as_ref()[..n], &bv.as_ref()[..n])
        }
    };
    match op {
        BinOp::Lt => ord.is_lt(),
        BinOp::Leq => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Geq => ord.is_ge(),
        BinOp::Eq => ord.is_eq(),
        BinOp::Neq => ord.is_ne(),
        other => unreachable!("{other:?} is not a comparison"),
    }
}

/// Mux-style write-back: the selected arm, extended per its sign, into
/// `dst`.
fn write_select<S: StateStore, M: MemStore>(ctx: &mut Ctx<'_, S, M>, dst: Slot, arm: Slot) {
    if dst.words <= 1 && arm.words <= 1 {
        let v = ctx.word_ext(arm);
        ctx.write1(dst, v);
    } else {
        let mut buf = wide_buf(dst.words.max(arm.words));
        ctx.read_ext(arm, buf.as_mut());
        ctx.write_words(dst, buf.as_mut());
    }
}

#[cold]
fn exec_bin_wide<S: StateStore, M: MemStore>(
    ctx: &mut Ctx<'_, S, M>,
    op: BinOp,
    dst: Slot,
    a: Slot,
    b: Slot,
) {
    let signed = a.signed;
    let n = dst.words.max(a.words).max(b.words) as usize;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => {
            let mut av = wide_buf(n as u16);
            let mut bv = wide_buf(n as u16);
            ctx.read_ext(a, av.as_mut());
            ctx.read_ext(b, bv.as_mut());
            let mut out = wide_buf(n as u16);
            {
                let (o, x, y) = (&mut out.as_mut()[..n], &av.as_ref()[..n], &bv.as_ref()[..n]);
                match op {
                    BinOp::Add => {
                        words::add(o, x, y);
                    }
                    BinOp::Sub => {
                        words::sub(o, x, y);
                    }
                    BinOp::And => words::and(o, x, y),
                    BinOp::Or => words::or(o, x, y),
                    BinOp::Xor => words::xor(o, x, y),
                    _ => unreachable!(),
                }
            }
            ctx.write_words(dst, out.as_mut());
        }
        BinOp::Mul => {
            let nw = dst.words as usize;
            let mut av = wide_buf(nw as u16);
            let mut bv = wide_buf(nw as u16);
            ctx.read_ext(a, av.as_mut());
            ctx.read_ext(b, bv.as_mut());
            let mut out = wide_buf(nw as u16);
            words::mul(
                &mut out.as_mut()[..nw],
                &av.as_ref()[..nw],
                &bv.as_ref()[..nw],
            );
            ctx.write_words(dst, out.as_mut());
        }
        BinOp::Div | BinOp::Rem => exec_divrem_wide(ctx, op, dst, a, b),
        BinOp::Lt | BinOp::Leq | BinOp::Gt | BinOp::Geq | BinOp::Eq | BinOp::Neq => {
            let mut av = wide_buf(n as u16);
            let mut bv = wide_buf(n as u16);
            ctx.read_ext(a, av.as_mut());
            ctx.read_ext(b, bv.as_mut());
            let ord = if signed {
                words::scmp_extended(&av.as_ref()[..n], &bv.as_ref()[..n])
            } else {
                words::ucmp(&av.as_ref()[..n], &bv.as_ref()[..n])
            };
            let v = match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Leq => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Geq => ord.is_ge(),
                BinOp::Eq => ord.is_eq(),
                BinOp::Neq => ord.is_ne(),
                _ => unreachable!(),
            };
            ctx.write1(dst, v as u64);
        }
        BinOp::Dshl => {
            let sh = ctx.word_sat(b).min(dst.width as u64) as u32;
            let nw = dst.words as usize;
            let mut av = wide_buf(nw as u16);
            ctx.read_into(a, av.as_mut());
            let mut out = wide_buf(nw as u16);
            words::shl(&mut out.as_mut()[..nw], &av.as_ref()[..nw], sh);
            ctx.write_words(dst, out.as_mut());
        }
        BinOp::Dshr => {
            let sh = ctx.word_sat(b).min(a.width as u64 + 1) as u32;
            let nw = a.words.max(dst.words) as usize;
            let mut av = wide_buf(nw as u16);
            ctx.read_into(a, av.as_mut());
            let mut out = wide_buf(nw as u16);
            if signed {
                words::ashr(
                    &mut out.as_mut()[..nw],
                    &av.as_ref()[..nw],
                    sh.min(a.width),
                    a.width,
                );
            } else {
                words::lshr(&mut out.as_mut()[..nw], &av.as_ref()[..nw], sh);
            }
            ctx.write_words(dst, out.as_mut());
        }
    }
}

/// Multi-word division/remainder on the shared stack buffers — no heap
/// traffic below [`STACK_WORDS`] — matching the
/// [`gsim_value::ops::div`]/[`gsim_value::ops::rem`] reference
/// semantics bit for bit: magnitudes divide, the quotient takes the
/// XOR of the signs, the remainder the dividend's sign, and a zero
/// divisor yields `q = 0, r = a`.
#[cold]
fn exec_divrem_wide<S: StateStore, M: MemStore>(
    ctx: &mut Ctx<'_, S, M>,
    op: BinOp,
    dst: Slot,
    a: Slot,
    b: Slot,
) {
    let signed = a.signed;
    let n = words_for(a.width.max(b.width)).max(1);
    let mut aw = wide_buf(n as u16);
    let mut bw = wide_buf(n as u16);
    ctx.read_into(a, aw.as_mut());
    ctx.read_into(b, bw.as_mut());
    let mut neg_a = false;
    let mut neg_b = false;
    if signed {
        neg_a = magnitude_in_place(aw.as_mut(), a.width);
        neg_b = magnitude_in_place(bw.as_mut(), b.width);
    }
    let b_zero = words::is_zero(&bw.as_ref()[..n]);
    let mut q = wide_buf(n as u16);
    let mut r = wide_buf(n as u16);
    words::udivrem(
        &mut q.as_mut()[..n],
        &mut r.as_mut()[..n],
        &aw.as_ref()[..n],
        &bw.as_ref()[..n],
    );
    let nd = dst.words as usize;
    let copy = n.min(nd);
    let mut out = wide_buf(dst.words);
    if op == BinOp::Div {
        out.as_mut()[..copy].copy_from_slice(&q.as_ref()[..copy]);
        if signed && (neg_a ^ neg_b) && !b_zero {
            neg_in_place(out.as_mut(), nd);
        }
    } else {
        if signed && neg_a && !words::is_zero(&r.as_ref()[..n]) {
            neg_in_place(r.as_mut(), n);
        }
        out.as_mut()[..copy].copy_from_slice(&r.as_ref()[..copy]);
    }
    ctx.write_words(dst, out.as_mut());
}

/// Two's-complement magnitude at `width` bits, in place over the low
/// `words_for(width)` words; returns whether the value was negative.
fn magnitude_in_place(buf: &mut [u64], width: u32) -> bool {
    if width == 0 || !words::get_bit(buf, width - 1) {
        return false;
    }
    let nw = words_for(width);
    neg_in_place(buf, nw);
    words::mask_in_place(&mut buf[..nw], width);
    true
}

/// Two's-complement negation of the low `n` words, in place.
fn neg_in_place(buf: &mut [u64], n: usize) {
    let mut carry = 1u64;
    for w in &mut buf[..n] {
        let (s, c) = (!*w).overflowing_add(carry);
        *w = s;
        carry = c as u64;
    }
}

fn exec_un<S: StateStore, M: MemStore>(
    ctx: &mut Ctx<'_, S, M>,
    op: UnOp,
    dst: Slot,
    a: Slot,
    imm: u32,
) {
    if a.words <= 1 && dst.words <= 1 {
        let v = match op {
            UnOp::Not => !ctx.word(a),
            UnOp::Andr => (ctx.word(a) == lowmask(a.width)) as u64,
            UnOp::Orr => (ctx.word(a) != 0) as u64,
            UnOp::Xorr => (ctx.word(a).count_ones() % 2) as u64,
            UnOp::Neg => ctx.word_ext(a).wrapping_neg(),
            UnOp::Shl => {
                if imm >= 64 {
                    0
                } else {
                    ctx.word(a) << imm
                }
            }
            UnOp::Shr => {
                if a.signed {
                    ((ctx.word_ext(a) as i64) >> imm.min(63)) as u64
                } else if imm >= 64 {
                    0
                } else {
                    ctx.word(a) >> imm
                }
            }
            UnOp::Bits => ctx.word(a) >> imm.min(63),
        };
        ctx.write1(dst, v);
        return;
    }
    exec_un_wide(ctx, op, dst, a, imm);
}

#[cold]
fn exec_un_wide<S: StateStore, M: MemStore>(
    ctx: &mut Ctx<'_, S, M>,
    op: UnOp,
    dst: Slot,
    a: Slot,
    imm: u32,
) {
    let na = a.words as usize;
    let nd = dst.words as usize;
    let mut av = wide_buf(a.words.max(dst.words));
    ctx.read_into(a, av.as_mut());
    match op {
        UnOp::Not => {
            let mut out = wide_buf(dst.words);
            for i in 0..nd {
                out.as_mut()[i] = !av.as_ref()[i];
            }
            ctx.write_words(dst, out.as_mut());
        }
        UnOp::Andr => {
            let v = words::andr(&av.as_ref()[..na], a.width);
            ctx.write1(dst, v as u64);
        }
        UnOp::Orr => {
            let v = words::orr(&av.as_ref()[..na]);
            ctx.write1(dst, v as u64);
        }
        UnOp::Xorr => {
            let v = words::xorr(&av.as_ref()[..na]);
            ctx.write1(dst, v as u64);
        }
        UnOp::Neg => {
            let nw = nd;
            let mut ext = wide_buf(dst.words);
            ctx.read_ext(a, ext.as_mut());
            let mut out = wide_buf(dst.words);
            words::neg(&mut out.as_mut()[..nw], &ext.as_ref()[..nw]);
            ctx.write_words(dst, out.as_mut());
        }
        UnOp::Shl => {
            let mut src = wide_buf(dst.words);
            ctx.read_into(a, src.as_mut());
            let mut out = wide_buf(dst.words);
            words::shl(&mut out.as_mut()[..nd], &src.as_ref()[..nd], imm);
            ctx.write_words(dst, out.as_mut());
        }
        UnOp::Shr => {
            let n = na.max(nd);
            let mut out = wide_buf(n as u16);
            if a.signed {
                words::ashr(
                    &mut out.as_mut()[..na],
                    &av.as_ref()[..na],
                    imm.min(a.width),
                    a.width,
                );
            } else {
                words::lshr(
                    &mut out.as_mut()[..na],
                    &av.as_ref()[..na],
                    imm.min(a.width * 2),
                );
            }
            ctx.write_words(dst, out.as_mut());
        }
        UnOp::Bits => {
            let mut out = wide_buf(dst.words);
            words::extract(&mut out.as_mut()[..nd], &av.as_ref()[..na], imm, dst.width);
            ctx.write_words(dst, out.as_mut());
        }
    }
}

/// A stack buffer for wide values, spilling to the heap past
/// [`STACK_WORDS`].
// The outsized stack variant is the point: wide-op temporaries stay
// allocation-free in the common case, so don't box it away.
#[allow(clippy::large_enum_variant)]
pub(crate) enum WideBuf {
    Stack([u64; STACK_WORDS], usize),
    Heap(Vec<u64>),
}

impl WideBuf {
    #[inline]
    pub(crate) fn as_ref(&self) -> &[u64] {
        match self {
            WideBuf::Stack(a, n) => &a[..*n],
            WideBuf::Heap(v) => v,
        }
    }

    #[inline]
    pub(crate) fn as_mut(&mut self) -> &mut [u64] {
        match self {
            WideBuf::Stack(a, n) => &mut a[..*n],
            WideBuf::Heap(v) => v,
        }
    }
}

#[inline]
pub(crate) fn wide_buf(words: u16) -> WideBuf {
    let n = (words as usize).max(1);
    if n <= STACK_WORDS {
        WideBuf::Stack([0u64; STACK_WORDS], n)
    } else {
        WideBuf::Heap(vec![0u64; n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(state: Vec<u64>, consts: Vec<u64>) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        (state, vec![0u64; 64], consts)
    }

    fn run(state: &mut [u64], scratch: &mut [u64], consts: &[u64], instrs: &[Instr]) {
        let mems: Vec<MemArena> = Vec::new();
        let mut ctx = Ctx {
            state: &mut state[..],
            scratch: &mut scratch[..],
            consts,
            mems: &mems[..],
        };
        run_instrs(&mut ctx, instrs);
    }

    #[test]
    fn narrow_add_masks() {
        let (mut st, mut sc, cs) = ctx_with(vec![250, 10, 0], vec![]);
        let a = Slot::state(0, 8, false);
        let b = Slot::state(1, 8, false);
        let dst = Slot::state(2, 9, false);
        run(
            &mut st,
            &mut sc,
            &cs,
            &[Instr::Bin {
                op: BinOp::Add,
                dst,
                a,
                b,
            }],
        );
        assert_eq!(st[2], 260);
    }

    #[test]
    fn narrow_signed_div_truncates() {
        // -7 / 2 == -3 at 9 bits
        let (mut st, mut sc, cs) = ctx_with(vec![0xf9, 2, 0], vec![]);
        let a = Slot::state(0, 8, true);
        let b = Slot::state(1, 8, true);
        let dst = Slot::state(2, 9, true);
        run(
            &mut st,
            &mut sc,
            &cs,
            &[Instr::Bin {
                op: BinOp::Div,
                dst,
                a,
                b,
            }],
        );
        assert_eq!(st[2] & 0x1ff, 0x1fd); // -3 masked to 9 bits
    }

    #[test]
    fn wide_add_carries() {
        let (mut st, mut sc, cs) = ctx_with(vec![u64::MAX, 0, 1, 0, 0, 0], vec![]);
        let a = Slot::state(0, 65, false);
        let b = Slot::state(2, 65, false);
        let dst = Slot::state(4, 66, false);
        run(
            &mut st,
            &mut sc,
            &cs,
            &[Instr::Bin {
                op: BinOp::Add,
                dst,
                a,
                b,
            }],
        );
        assert_eq!((st[4], st[5]), (0, 1));
    }

    #[test]
    fn cat_and_bits_roundtrip() {
        let (mut st, mut sc, cs) = ctx_with(vec![0xab, 0xcd, 0, 0], vec![]);
        let a = Slot::state(0, 8, false);
        let b = Slot::state(1, 8, false);
        let cat_dst = Slot::state(2, 16, false);
        let bits_dst = Slot::state(3, 8, false);
        run(
            &mut st,
            &mut sc,
            &cs,
            &[
                Instr::Cat { dst: cat_dst, a, b },
                Instr::Un {
                    op: UnOp::Bits,
                    dst: bits_dst,
                    a: cat_dst,
                    imm: 8,
                },
            ],
        );
        assert_eq!(st[2], 0xabcd);
        assert_eq!(st[3], 0xab);
    }

    #[test]
    fn mux_extends_arms() {
        let (mut st, mut sc, cs) = ctx_with(vec![1, 0x8, 0x00, 0], vec![]);
        let sel = Slot::state(0, 1, false);
        let t = Slot::state(1, 4, true); // 0x8 = -8 as 4-bit signed
        let f = Slot::state(2, 8, true);
        let dst = Slot::state(3, 8, true);
        run(&mut st, &mut sc, &cs, &[Instr::Mux { dst, sel, t, f }]);
        assert_eq!(st[3], 0xf8); // -8 sign-extended to 8 bits
    }

    #[test]
    fn mem_read_in_and_out_of_range() {
        let mut mem = MemArena::new("m".into(), 2, 16);
        mem.load_image(&[0x1234, 0x5678]).unwrap();
        let mems = [mem];
        let mut st = [1u64, 0, 5, 0];
        let mut sc = [0u64; 8];
        let addr = Slot::state(0, 2, false);
        let dst = Slot::state(1, 16, false);
        let bad_addr = Slot::state(2, 4, false);
        let dst2 = Slot::state(3, 16, false);
        let cs: Vec<u64> = vec![];
        let mut ctx = Ctx {
            state: &mut st[..],
            scratch: &mut sc[..],
            consts: &cs,
            mems: &mems[..],
        };
        run_instrs(
            &mut ctx,
            &[
                Instr::ReadMem { dst, mem: 0, addr },
                Instr::ReadMem {
                    dst: dst2,
                    mem: 0,
                    addr: bad_addr,
                },
            ],
        );
        assert_eq!(st[1], 0x5678);
        assert_eq!(st[3], 0, "out-of-range read is zero");
    }

    #[test]
    fn atomic_mems_snapshot_copy_back_roundtrips_bit_exactly() {
        let mut m = MemArena::new("m".into(), 5, 96);
        for a in 0..5 {
            let entry = m.entry_mut(a).unwrap();
            entry[0] = 0xdead_beef_0000_0000 | a;
            entry[1] = (a << 8) | 0xff; // masked region: 96 % 64 = 32 bits
        }
        let before: Vec<u64> = m.words().to_vec();
        let mems = [m];
        let image = AtomicMems::snapshot(&mems);
        // Mutate through the atomic image, as the parallel commit does.
        image.arenas[0].data[2].store(0x1234_5678, AtomicOrdering::Relaxed);
        let mut mems = mems;
        image.copy_back(&mut mems);
        let mut expect = before;
        expect[2] = 0x1234_5678;
        assert_eq!(mems[0].words(), &expect[..], "copy_back must be bit-exact");
        // And an unmodified round trip is the identity.
        let image2 = AtomicMems::snapshot(&mems);
        let again: Vec<u64> = mems[0].words().to_vec();
        image2.copy_back(&mut mems);
        assert_eq!(mems[0].words(), &again[..]);
    }

    #[test]
    fn wide_divrem_stack_path_matches_reference_ops() {
        use gsim_value::{ops, Value};
        // 100-bit operands: exercises exec_divrem_wide directly.
        let a_words = [0xdead_beef_cafe_f00d_u64, 0x0000_000f_ffff_ffff];
        let b_words = [0x0000_0000_abcd_ef01_u64, 0x3];
        let mut st = vec![a_words[0], a_words[1], b_words[0], b_words[1], 0, 0, 0, 0];
        let mut sc = vec![0u64; 8];
        let cs: Vec<u64> = vec![];
        for (signed, op) in [
            (false, BinOp::Div),
            (true, BinOp::Div),
            (false, BinOp::Rem),
            (true, BinOp::Rem),
        ] {
            let a = Slot::state(0, 100, signed);
            let b = Slot::state(2, 100, signed);
            let dst = Slot::state(4, if op == BinOp::Div { 101 } else { 100 }, signed);
            st[4] = 0;
            st[5] = 0;
            run(&mut st, &mut sc, &cs, &[Instr::Bin { op, dst, a, b }]);
            let va = Value::from_words(a_words.to_vec(), 100);
            let vb = Value::from_words(b_words.to_vec(), 100);
            let want = if op == BinOp::Div {
                ops::div(&va, &vb, signed)
            } else {
                ops::rem(&va, &vb, signed)
            }
            .zext_or_trunc(dst.width);
            assert_eq!(
                &st[4..4 + dst.words as usize],
                want.words(),
                "{op:?} signed={signed}"
            );
        }
    }

    #[test]
    fn reductions_narrow_and_wide() {
        let mut st = vec![0xffu64, u64::MAX, u64::MAX, 0, 0, 0];
        let mut sc = vec![0u64; 8];
        let cs: Vec<u64> = vec![];
        let a8 = Slot::state(0, 8, false);
        let wide = Slot::state(1, 128, false);
        let d0 = Slot::state(3, 1, false);
        let d1 = Slot::state(4, 1, false);
        let d2 = Slot::state(5, 1, false);
        run(
            &mut st,
            &mut sc,
            &cs,
            &[
                Instr::Un {
                    op: UnOp::Andr,
                    dst: d0,
                    a: a8,
                    imm: 0,
                },
                Instr::Un {
                    op: UnOp::Andr,
                    dst: d1,
                    a: wide,
                    imm: 0,
                },
                Instr::Un {
                    op: UnOp::Xorr,
                    dst: d2,
                    a: a8,
                    imm: 0,
                },
            ],
        );
        assert_eq!((st[3], st[4], st[5]), (1, 1, 0));
    }
}
