//! Hardware-independent cost counters.
//!
//! The paper models per-cycle simulation cost as
//! `T = ((E + Asucc) * af + Aexam) * N`. These counters measure each
//! factor directly, so experiments can compare engines and partitioning
//! algorithms without depending on host noise: `node_evals` tracks
//! `E × af × N`, `activation_ops` tracks `Asucc`, `aexam_checks` tracks
//! `Aexam`, and `activity_factor` reports `af`.

/// Runtime counters, updated every cycle by the engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Completed simulation cycles.
    pub cycles: u64,
    /// Node evaluations performed (the paper's "active node" count).
    pub node_evals: u64,
    /// Supernodes evaluated.
    pub supernode_evals: u64,
    /// Active-bit examinations (`Aexam`): per-flag branches in the
    /// ESSENT mode; word checks plus set-bit visits in the GSIM mode.
    pub aexam_checks: u64,
    /// Successor-activation operations executed (`Asucc`), including
    /// branchless no-ops on unchanged values.
    pub activation_ops: u64,
    /// Activations that actually set a bit ("activation times" in the
    /// paper's Table III).
    pub activations: u64,
    /// Node evaluations whose value changed.
    pub value_changes: u64,
    /// Reset-signal checks (per cycle: registers-with-reset in the fast
    /// path, distinct reset signals in the slow path).
    pub reset_checks: u64,
    /// Bytecode instructions executed.
    pub instrs_executed: u64,
    /// Fused superinstructions among `instrs_executed` (compare→mux,
    /// cat-of-const) — the runtime side of the dispatch breakdown.
    pub fused_executed: u64,
}

impl Counters {
    /// Accumulates `other` into `self` — used by the multithreaded
    /// engines to merge per-thread counters into the simulator's
    /// totals (the per-thread sum is deterministic for a fixed thread
    /// count, so merged stats stay stable run to run).
    pub fn merge(&mut self, other: &Counters) {
        self.cycles += other.cycles;
        self.node_evals += other.node_evals;
        self.supernode_evals += other.supernode_evals;
        self.aexam_checks += other.aexam_checks;
        self.activation_ops += other.activation_ops;
        self.activations += other.activations;
        self.value_changes += other.value_changes;
        self.reset_checks += other.reset_checks;
        self.instrs_executed += other.instrs_executed;
        self.fused_executed += other.fused_executed;
    }

    /// Fraction of executed instructions that were fused
    /// superinstructions.
    pub fn fused_fraction(&self) -> f64 {
        if self.instrs_executed == 0 {
            return 0.0;
        }
        self.fused_executed as f64 / self.instrs_executed as f64
    }

    /// Executed instructions per simulated cycle.
    pub fn instrs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instrs_executed as f64 / self.cycles as f64
    }

    /// Activity factor: evaluated nodes / (total nodes × cycles).
    pub fn activity_factor(&self, total_nodes: usize) -> f64 {
        if self.cycles == 0 || total_nodes == 0 {
            return 0.0;
        }
        self.node_evals as f64 / (total_nodes as f64 * self.cycles as f64)
    }

    /// Fraction of examinations among all counted work items — the
    /// paper reports 82% of executed branches being active-bit checks.
    pub fn exam_share(&self) -> f64 {
        let total = self.aexam_checks + self.activation_ops + self.instrs_executed;
        if total == 0 {
            return 0.0;
        }
        self.aexam_checks as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_factor_math() {
        let c = Counters {
            cycles: 10,
            node_evals: 50,
            ..Counters::default()
        };
        assert!((c.activity_factor(100) - 0.05).abs() < 1e-12);
        assert_eq!(Counters::default().activity_factor(100), 0.0);
    }

    #[test]
    fn exam_share_bounds() {
        let c = Counters {
            aexam_checks: 82,
            activation_ops: 10,
            instrs_executed: 8,
            ..Counters::default()
        };
        assert!((c.exam_share() - 0.82).abs() < 1e-12);
    }
}
