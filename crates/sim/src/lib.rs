//! Simulation engines for the GSIM RTL simulator.
//!
//! The optimized circuit graph is compiled into a **flat execution
//! image**: one contiguous arena of fixed-size (16-byte) encoded
//! instructions laid out in supernode execution order, with tasks and
//! supernodes reduced to ranges into it, an optional superinstruction
//! fusion pass collapsing frequent adjacent instruction pairs, and a
//! locality-aware state-slot layout (inputs / register current+shadow
//! pairs / sweep-ordered combinational values segregated). All-narrow
//! tasks (every operand one word — the overwhelming majority) dispatch
//! through a fast loop that never re-checks operand widths; multi-word
//! instructions go through a side table. The image is executed by one
//! of four engine families, which together stand in for every
//! simulator the paper evaluates:
//!
//! * **Sequential full-cycle** ([`EngineKind::FullCycle`]) — evaluates
//!   every node every cycle in topological order: the Verilator /
//!   Arcilator model (paper Listing 1).
//! * **Multithreaded full-cycle** ([`EngineKind::FullCycleMt`]) —
//!   levelized evaluation with barriers between levels: the
//!   Verilator `--threads N` model.
//! * **Essential-signal** ([`EngineKind::Essential`]) — per-supernode
//!   active bits; only activated supernodes are evaluated (paper
//!   Listings 2–4). Runtime techniques are individually switchable to
//!   reproduce the Figure 8 breakdown:
//!   - `check_multiple_bits`: skip 64 active bits with one word
//!     comparison (Listing 4) instead of branching per flag;
//!   - `activation_cost_model`: choose branchy vs branchless successor
//!     activation per node by successor count (§III-B);
//!   - `reset_slow_path`: update registers speculatively and check each
//!     distinct reset signal once per cycle (Listing 6).
//! * **Parallel essential-signal** ([`EngineKind::EssentialMt`]) —
//!   activity-based skipping *and* multi-core execution. The supernode
//!   partition is condensed into a dependency DAG
//!   ([`gsim_partition::SupernodeDag`]) whose *levels* group mutually
//!   independent supernodes; each cycle the engine sweeps the levels in
//!   order with one barrier per level (a bulk-synchronous schedule, as
//!   in Manticore/Parendi). Within a level, every thread claims the
//!   activated supernodes of its static slice, skipping idle spans with
//!   the same `check_multiple_bits` word scans as the sequential
//!   engine; cross-thread activation is a relaxed atomic OR into the
//!   shared active-bit words, made visible by the next level barrier.
//!   Thread 0 runs the commit phase (registers, resets, memory write
//!   ports) between the last barrier of one cycle and the first of the
//!   next.
//! * **Threaded-code** ([`EngineKind::Threaded`]) — the essential
//!   engine's sweep with dispatch moved to compile time: every encoded
//!   unit is lowered once into a pre-resolved handler record (a
//!   monomorphized function pointer plus flat-arena operand offsets),
//!   so the hot loop is a bare indirect-call chain with no decode, no
//!   width re-checks, and no operand-space branching. Compile-free
//!   AoT-class dispatch — the CLI's `--backend jit`.
//!
//! All four families share one executor core (`executor`): the
//! eval/commit/activation routines are generic over plain-word vs
//! shared-atomic storage, so the sequential and parallel paths execute
//! the same code. All engines implement identical semantics, pinned by
//! the differential tests against [`gsim_graph::interp::RefInterp`].
//!
//! The crate also defines the backend-agnostic [`Session`] trait —
//! `poke`/`peek`/`load_mem`/`step`/`run_driven`/`counters`/
//! `snapshot`+`restore` behind one object-safe surface with the
//! unified [`GsimError`] — which [`Simulator`] implements for every
//! engine family and `gsim_codegen`'s persistent AoT session
//! implements over a wire protocol (documented on the trait), so
//! harnesses written against `&mut dyn Session` run on every
//! execution substrate.
//!
//! # Example
//!
//! ```
//! use gsim_sim::{Simulator, SimOptions};
//!
//! let graph = gsim_firrtl::compile(r#"
//! circuit Counter :
//!   module Counter :
//!     input clock : Clock
//!     output out : UInt<8>
//!     reg c : UInt<8>, clock
//!     c <= tail(add(c, UInt<8>(1)), 1)
//!     out <= c
//! "#).unwrap();
//! let mut sim = Simulator::compile(&graph, &SimOptions::default()).unwrap();
//! sim.run(10);
//! assert_eq!(sim.peek_u64("out"), Some(9));
//! ```

// `deny`, not `forbid`: the threaded backend's two arena accessors
// carry the crate's only `#[allow(unsafe_code)]` — bounds checks whose
// invariants are asserted once at lowering time (see
// `threaded::TCtx::rd`). Everything else stays check-enforced.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod counters;
mod engine;
mod exec;
mod executor;
mod explore;
mod fault;
mod image;
mod scenario;
mod session;
mod storage;
mod supervise;
mod threaded;

pub use compile::FusionStats;
pub use counters::Counters;
pub use engine::{InputFrame, InputHandle, Simulator};
pub use explore::{BranchResult, ExploreOptions, ExploreReport, Explorer, SendSessionFactory};
pub use fault::FaultPlan;
pub use scenario::Scenario;
pub use session::{GsimError, MemoryInfo, Session, SessionFrame, SignalInfo, SnapshotId};
pub use storage::MemArena;
// `Session::peek` and `BranchResult::peeks` speak `Value`; re-export
// it so downstream crates can name what they receive.
pub use gsim_value::Value;
pub use supervise::{RecoveryStats, SessionFactory, SuperviseOptions, SupervisedSession};

use gsim_partition::PartitionOptions;

/// Which engine executes the compiled design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Evaluate all nodes every cycle, single thread (Listing 1).
    FullCycle,
    /// Evaluate all nodes every cycle, levelized across N threads.
    FullCycleMt {
        /// Number of worker threads (≥ 1).
        threads: usize,
    },
    /// Essential-signal simulation with supernode active bits.
    Essential,
    /// Essential-signal simulation swept level-parallel across N
    /// threads (one barrier per supernode-DAG level).
    EssentialMt {
        /// Number of worker threads (≥ 1).
        threads: usize,
    },
    /// Essential-signal simulation dispatched through the in-process
    /// threaded-code backend: each task's encoded units are lowered
    /// once, at compile time, into a dense stream of pre-resolved
    /// handler records (monomorphized per op × width class × operand
    /// shape, with all operand offsets resolved into one flat arena),
    /// so the hot loop does no decode, no width re-checks, and no
    /// operand-space branching. The CLI calls this backend `jit`.
    Threaded,
}

/// Compilation and runtime options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Engine family.
    pub engine: EngineKind,
    /// Supernode partitioning (essential engine only).
    pub partition: PartitionOptions,
    /// Listing 4: check a word of active bits with a single condition.
    pub check_multiple_bits: bool,
    /// §III-B activation-overhead cost model: pick branchy activation
    /// for nodes with many successors, branchless for few. When `false`
    /// every node activates branchlessly (the ESSENT baseline).
    pub activation_cost_model: bool,
    /// Listing 6: speculative register update with per-signal reset
    /// checks at end of cycle. Requires the graph to carry `RegReset`
    /// metadata (i.e. the reset-lowering pass was *not* run).
    pub reset_slow_path: bool,
    /// Superinstruction fusion: collapse frequent adjacent instruction
    /// pairs (op→masking-copy, compare→mux, cat-of-const, register
    /// shadow copies) into single fused opcodes in the execution image.
    /// Purely a substrate optimization — results are bit-identical
    /// either way.
    pub superinstr_fusion: bool,
    /// Locality-aware state layout: segregate input / register /
    /// combinational slot spaces and number combinational slots in
    /// sweep order. Off reproduces the legacy interleaved numbering.
    pub locality_layout: bool,
    /// Threaded-code dispatch: lower the execution image into
    /// pre-resolved handler records at compile time (the
    /// [`EngineKind::Threaded`] hot loop). When `false` the threaded
    /// engine falls back to the plain essential interpreter — the
    /// `--no-threaded` ablation. Purely a substrate optimization —
    /// results and semantic counters are bit-identical either way.
    pub threaded_dispatch: bool,
}

impl Default for SimOptions {
    /// Full GSIM configuration.
    fn default() -> Self {
        SimOptions {
            engine: EngineKind::Essential,
            partition: PartitionOptions::default(),
            check_multiple_bits: true,
            activation_cost_model: true,
            reset_slow_path: true,
            superinstr_fusion: true,
            locality_layout: true,
            threaded_dispatch: true,
        }
    }
}

impl SimOptions {
    /// Verilator-like: sequential full-cycle.
    pub fn full_cycle() -> SimOptions {
        SimOptions {
            engine: EngineKind::FullCycle,
            ..SimOptions::default()
        }
    }

    /// Verilator-NT-like: levelized multithreaded full-cycle.
    pub fn full_cycle_mt(threads: usize) -> SimOptions {
        SimOptions {
            engine: EngineKind::FullCycleMt { threads },
            ..SimOptions::default()
        }
    }

    /// ESSENT-like: essential-signal engine without GSIM's runtime
    /// refinements (per-flag checks, always-branchless activation,
    /// resets in the fast path), with MFFC partitioning, and without
    /// the substrate-level image optimizations (fusion, locality
    /// layout) so the baseline stays honest.
    pub fn essent_like() -> SimOptions {
        SimOptions {
            engine: EngineKind::Essential,
            partition: PartitionOptions {
                algorithm: gsim_partition::Algorithm::MffcBased,
                max_size: PartitionOptions::DEFAULT_MAX_SIZE,
            },
            check_multiple_bits: false,
            activation_cost_model: false,
            reset_slow_path: false,
            superinstr_fusion: false,
            locality_layout: false,
            threaded_dispatch: false,
        }
    }

    /// GSIM-JIT: the full GSIM configuration executed through the
    /// in-process threaded-code backend ([`EngineKind::Threaded`]).
    pub fn threaded() -> SimOptions {
        SimOptions {
            engine: EngineKind::Threaded,
            ..SimOptions::default()
        }
    }

    /// GSIM-MT: the full GSIM configuration with the essential-signal
    /// sweep parallelized level by level across `threads` threads.
    pub fn essential_mt(threads: usize) -> SimOptions {
        SimOptions {
            engine: EngineKind::EssentialMt { threads },
            ..SimOptions::default()
        }
    }
}

/// Error produced when compiling a graph for simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The graph failed validation.
    InvalidGraph(String),
    /// Thread count of zero requested.
    NoThreads,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::InvalidGraph(m) => write!(f, "invalid graph: {m}"),
            CompileError::NoThreads => write!(f, "thread count must be at least 1"),
        }
    }
}

impl std::error::Error for CompileError {}
