//! `gsim` — command-line front end, mirroring the paper's tool:
//! compile a FIRRTL design, report optimization statistics, optionally
//! simulate and/or emit C++.
//!
//! ```text
//! gsim design.fir [--preset gsim|verilator|essent|arcilator]
//!                 [--threads N]                # parallel engine (gsim/verilator)
//!                 [--max-supernode-size N]     # the paper's CLI knob
//!                 [--no-fuse]                  # ablate superinstruction fusion
//!                 [--no-layout]                # ablate the locality state layout
//!                 [--cycles N]                 # simulate (zero inputs)
//!                 [--emit-cpp out.cc]
//! ```

use gsim::{Compiler, Preset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut preset = Preset::Gsim;
    let mut threads: Option<usize> = None;
    let mut max_size: Option<usize> = None;
    let mut no_fuse = false;
    let mut no_layout = false;
    let mut cycles: u64 = 0;
    let mut emit_cpp: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--preset" => {
                preset = match it.next().map(String::as_str) {
                    Some("gsim") => Preset::Gsim,
                    Some("verilator") => Preset::Verilator,
                    Some("essent") => Preset::Essent,
                    Some("arcilator") => Preset::Arcilator,
                    other => die(&format!("unknown preset {other:?}")),
                };
            }
            "--threads" => {
                let n: usize = parse(it.next(), "--threads");
                if n == 0 {
                    die("--threads needs at least 1");
                }
                threads = Some(n);
            }
            "--max-supernode-size" => {
                max_size = Some(parse(it.next(), "--max-supernode-size"));
            }
            "--no-fuse" => no_fuse = true,
            "--no-layout" => no_layout = true,
            "--cycles" => cycles = parse(it.next(), "--cycles"),
            "--emit-cpp" => emit_cpp = it.next().cloned(),
            "--help" | "-h" => {
                usage();
                return;
            }
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = input else {
        usage();
        std::process::exit(2);
    };
    // `--threads` upgrades a preset to its multithreaded engine.
    if let Some(n) = threads {
        preset = match preset {
            Preset::Gsim | Preset::GsimMt(_) => Preset::GsimMt(n),
            Preset::Verilator | Preset::VerilatorMt(_) => Preset::VerilatorMt(n),
            other => die(&format!(
                "--threads applies to the gsim and verilator presets, not {}",
                other.name()
            )),
        };
    }
    // Ablation switches apply on top of whatever the preset enables.
    let mut opts = preset.options();
    if no_fuse {
        opts.superinstruction_fusion = false;
    }
    if no_layout {
        opts.locality_layout = false;
    }
    if let Some(n) = max_size {
        opts.max_supernode_size = n;
    }

    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let graph = gsim_firrtl::compile(&src).unwrap_or_else(|e| die(&e));

    let (mut sim, report) = Compiler::new(&graph)
        .options(opts)
        .build()
        .unwrap_or_else(|e| die(&e));

    eprintln!("design   : {} ({})", graph.name(), path);
    eprintln!("preset   : {}", preset.name());
    eprintln!(
        "nodes    : {} -> {} ({} edges -> {})",
        report.nodes_before, report.nodes_after, report.edges_before, report.edges_after
    );
    eprintln!("supernodes: {}", report.supernodes);
    eprintln!(
        "compile  : {:.1} ms (partition {:.1} ms), {} instrs ({} image units), {} B state",
        report.compile_time.as_secs_f64() * 1e3,
        report.partition_time.as_secs_f64() * 1e3,
        report.instrs,
        report.image_units,
        report.state_bytes
    );
    eprintln!(
        "fusion   : {} pairs ({} masking-copy, {} reg-shadow, {} cmp-mux, {} cat-const)",
        report.fusion.fused_pairs(),
        report.fusion.masking_copies,
        report.fusion.reg_shadow_copies,
        report.fusion.cmp_mux,
        report.fusion.cat_const
    );

    if cycles > 0 {
        let start = std::time::Instant::now();
        sim.run(cycles);
        let secs = start.elapsed().as_secs_f64();
        eprintln!(
            "simulated {} cycles in {:.3} s ({:.1} kHz)",
            cycles,
            secs,
            cycles as f64 / secs / 1e3
        );
        for &out in graph.outputs() {
            let name = graph.display_name(out);
            if let Some(v) = sim.peek(&name) {
                println!("{name} = {v}");
            }
        }
        let c = sim.counters();
        eprintln!(
            "activity factor: {:.2}%",
            c.activity_factor(report.nodes_after) * 100.0
        );
    }

    if let Some(out_path) = emit_cpp {
        let style = match preset {
            Preset::Verilator | Preset::VerilatorMt(_) | Preset::Arcilator => {
                gsim_codegen::Style::FullCycle
            }
            _ => gsim_codegen::Style::Essential,
        };
        let opts = preset.options();
        let (optimized, _) = gsim_passes::run(
            graph.clone(),
            &gsim::PassOptions {
                expression_simplify: opts.expression_simplify,
                redundant_elim: opts.redundant_elim,
                node_inline: opts.node_inline,
                node_extract: opts.node_extract,
                bit_split: opts.bit_split,
                reset_slow_path: opts.reset_slow_path,
            },
        );
        let emitted = gsim_codegen::emit(
            &optimized,
            style,
            &gsim_partition::PartitionOptions::default(),
        );
        std::fs::write(&out_path, &emitted.code)
            .unwrap_or_else(|e| die(&format!("cannot write {out_path}: {e}")));
        eprintln!(
            "emitted  : {out_path} ({} bytes, {:.1} ms)",
            emitted.code_bytes,
            emitted.emit_time.as_secs_f64() * 1e3
        );
    }
}

fn parse<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

fn usage() {
    println!(
        "gsim <design.fir> [--preset gsim|verilator|essent|arcilator] \
         [--threads N] [--max-supernode-size N] [--no-fuse] [--no-layout] \
         [--cycles N] [--emit-cpp out.cc]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
