//! `gsim` — command-line front end, mirroring the paper's tool:
//! compile a FIRRTL design, report optimization statistics, optionally
//! simulate and/or emit C++.
//!
//! ```text
//! gsim design.fir [--preset gsim|verilator|essent|arcilator]
//!                 [--backend interp|jit|aot]   # bytecode, threaded-code, or emit+rustc+run
//!                 [--threads N]                # parallel engine (gsim/verilator)
//!                 [--max-supernode-size N]     # the paper's CLI knob
//!                 [--no-fuse]                  # ablate superinstruction fusion
//!                 [--no-layout]                # ablate the locality state layout
//!                 [--no-threaded]              # ablate threaded-code dispatch (jit)
//!                 [--cycles N]                 # simulate (zero inputs)
//!                 [--vcd out.vcd]              # change-driven waveform capture
//!                 [--emit-cpp out.cc]
//!                 [--emit-rust out.rs]         # the AoT backend's source
//!
//! gsim serve  --socket <ep> --cache-dir <dir>  # multi-tenant simulation service
//!             [--cache-capacity N] [--max-sessions N] [--idle-timeout SECS]
//!
//! gsim client <design.fir> --socket <ep>       # remote session (tests/CI)
//!             [--backend aot|interp|jit] [--cycles N] [--vcd out.vcd]
//!             [--stats] [--shutdown]
//!
//! gsim wavediff <a.vcd> <b.vcd>                # canonicalize + diff two VCDs
//!                                              # (exit 1 when histories differ)
//!
//! gsim explore <design.fir> --branches N       # snapshot-fork scenario exploration
//!             [--backend interp|jit|aot] [--scenario file] [--cycles N]
//!             [--warmup N] [--workers N] [--watch a,b] [--divergence]
//!             [--socket <ep>]                  # run remotely on a service session
//! ```
//!
//! Endpoints are `tcp:<addr>`, `unix:<path>`, or bare forms (a string
//! containing `/` is a Unix socket path, anything else a TCP address).

use gsim::{ClientSession, Compiler, Endpoint, Preset, Server, ServerConfig, Session};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return cmd_serve(&args[1..]),
        Some("client") => return cmd_client(&args[1..]),
        Some("explore") => return cmd_explore(&args[1..]),
        Some("wavediff") => return cmd_wavediff(&args[1..]),
        _ => {}
    }
    let mut input: Option<String> = None;
    let mut preset = Preset::Gsim;
    let mut threads: Option<usize> = None;
    let mut max_size: Option<usize> = None;
    let mut no_fuse = false;
    let mut no_layout = false;
    let mut no_threaded = false;
    let mut cycles: u64 = 0;
    let mut vcd: Option<String> = None;
    let mut emit_cpp: Option<String> = None;
    let mut emit_rust: Option<String> = None;
    let mut backend = "interp";

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--preset" => {
                preset = match it.next().map(String::as_str) {
                    Some("gsim") => Preset::Gsim,
                    Some("verilator") => Preset::Verilator,
                    Some("essent") => Preset::Essent,
                    Some("arcilator") => Preset::Arcilator,
                    other => die(&format!("unknown preset {other:?}")),
                };
            }
            "--backend" => {
                backend = match it.next().map(String::as_str) {
                    Some("aot") => "aot",
                    Some("interp") => "interp",
                    Some("jit") => "jit",
                    other => die(&format!("unknown backend {other:?} (interp|jit|aot)")),
                };
            }
            "--threads" => {
                let n: usize = parse(it.next(), "--threads");
                if n == 0 {
                    die("--threads needs at least 1");
                }
                threads = Some(n);
            }
            "--max-supernode-size" => {
                max_size = Some(parse(it.next(), "--max-supernode-size"));
            }
            "--no-fuse" => no_fuse = true,
            "--no-layout" => no_layout = true,
            "--no-threaded" => no_threaded = true,
            "--cycles" => cycles = parse(it.next(), "--cycles"),
            "--vcd" => vcd = it.next().cloned(),
            "--emit-cpp" => emit_cpp = it.next().cloned(),
            "--emit-rust" => emit_rust = it.next().cloned(),
            "--help" | "-h" => {
                usage();
                return;
            }
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = input else {
        usage();
        std::process::exit(2);
    };
    if vcd.is_some() && cycles == 0 {
        die("--vcd captures value changes while simulating; give it --cycles N");
    }
    // `--threads` upgrades a preset to its multithreaded engine.
    if let Some(n) = threads {
        preset = match preset {
            Preset::Gsim | Preset::GsimMt(_) => Preset::GsimMt(n),
            Preset::Verilator | Preset::VerilatorMt(_) => Preset::VerilatorMt(n),
            other => die(&format!(
                "--threads applies to the gsim and verilator presets, not {}",
                other.name()
            )),
        };
    }
    // Ablation switches apply on top of whatever the preset enables.
    let mut opts = preset.options();
    if no_fuse {
        opts.superinstruction_fusion = false;
    }
    if no_layout {
        opts.locality_layout = false;
    }
    if no_threaded {
        if backend != "jit" {
            die("--no-threaded ablates the jit backend's threaded-code dispatch (use --backend jit)");
        }
        opts.threaded_dispatch = false;
    }
    if backend == "jit" {
        if threads.is_some() {
            die("--threads does not apply to the jit backend");
        }
        opts.engine = gsim::EngineChoice::Threaded;
    }
    if let Some(n) = max_size {
        opts.max_supernode_size = n;
    }

    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let graph = gsim_firrtl::compile(&src).unwrap_or_else(|e| die(&e));

    if backend == "aot" {
        if threads.is_some() {
            die("--threads does not apply to the aot backend");
        }
        if emit_cpp.is_some() {
            die("--emit-cpp does not apply to the aot backend (use --emit-rust)");
        }
        if no_fuse || no_layout || no_threaded {
            // Interpreter-image ablations; the compiled binary has no
            // instruction stream to fuse, lower, or relayout.
            die("--no-fuse/--no-layout/--no-threaded ablate the interpreter's execution image and do not apply to the aot backend");
        }
        run_aot(
            &graph,
            &path,
            preset,
            opts,
            cycles,
            vcd.as_deref(),
            emit_rust.as_deref(),
        );
        return;
    }

    let (mut sim, report) = Compiler::new(&graph)
        .options(opts)
        .build()
        .unwrap_or_else(|e| die(&e.to_string()));

    eprintln!("design   : {} ({})", graph.name(), path);
    if backend == "jit" {
        eprintln!("preset   : {} [jit backend]", preset.name());
        eprintln!(
            "threaded : lowered in {:.2} ms",
            sim.lowering_time().as_secs_f64() * 1e3
        );
    } else {
        eprintln!("preset   : {}", preset.name());
    }
    eprintln!(
        "nodes    : {} -> {} ({} edges -> {})",
        report.nodes_before, report.nodes_after, report.edges_before, report.edges_after
    );
    eprintln!("supernodes: {}", report.supernodes);
    eprintln!(
        "compile  : {:.1} ms (partition {:.1} ms), {} instrs ({} image units), {} B state",
        report.compile_time.as_secs_f64() * 1e3,
        report.partition_time.as_secs_f64() * 1e3,
        report.instrs,
        report.image_units,
        report.state_bytes
    );
    eprintln!(
        "fusion   : {} pairs ({} masking-copy, {} reg-shadow, {} cmp-mux, {} cat-const)",
        report.fusion.fused_pairs(),
        report.fusion.masking_copies,
        report.fusion.reg_shadow_copies,
        report.fusion.cmp_mux,
        report.fusion.cat_const
    );

    if cycles > 0 {
        // Both backends route the actual simulation through the
        // backend-agnostic `Session` trait, so this path and the AoT
        // path below print byte-identical stdout (CI diffs them).
        if let Some(p) = vcd.as_deref() {
            Session::trace_start(&mut sim, None, open_vcd(p))
                .unwrap_or_else(|e| die(&e.to_string()));
        }
        simulate(&mut sim, &graph, cycles, "");
        if let Some(p) = vcd.as_deref() {
            Session::trace_stop(&mut sim).unwrap_or_else(|e| die(&e.to_string()));
            eprintln!("vcd      : {p}");
        }
        let c = Session::counters(&mut sim).unwrap_or_default();
        eprintln!(
            "activity factor: {:.2}%",
            c.activity_factor(report.nodes_after) * 100.0
        );
    }

    if emit_cpp.is_some() || emit_rust.is_some() {
        // Emission uses the same resolved options as the simulation
        // above (preset + ablation flags + --max-supernode-size), so
        // the written source is the program those flags would run.
        let (optimized, _) = gsim_passes::run(graph.clone(), &opts.pass_options());
        let popts = opts.partition_options();
        if let Some(out_path) = emit_cpp {
            let style = match preset {
                Preset::Verilator | Preset::VerilatorMt(_) | Preset::Arcilator => {
                    gsim_codegen::Style::FullCycle
                }
                _ => gsim_codegen::Style::Essential,
            };
            let emitted = gsim_codegen::emit(&optimized, style, &popts);
            std::fs::write(&out_path, &emitted.code)
                .unwrap_or_else(|e| die(&format!("cannot write {out_path}: {e}")));
            eprintln!(
                "emitted  : {out_path} ({} bytes, {:.1} ms)",
                emitted.code_bytes,
                emitted.emit_time.as_secs_f64() * 1e3
            );
        }
        if let Some(out_path) = emit_rust {
            // The AoT backend's source, without invoking rustc.
            let emitted =
                gsim_codegen::emit_rust(&optimized, &popts).unwrap_or_else(|e| die(&e.to_string()));
            std::fs::write(&out_path, &emitted.code)
                .unwrap_or_else(|e| die(&format!("cannot write {out_path}: {e}")));
            eprintln!(
                "emitted  : {out_path} ({} bytes, {:.1} ms)",
                emitted.code_bytes,
                emitted.emit_time.as_secs_f64() * 1e3
            );
        }
    }
}

/// Runs `cycles` cycles through the backend-agnostic [`Session`] trait
/// and prints every named output as `name = <width>'h<hex>` — shared
/// verbatim by the interpreter and AoT paths, which is what makes
/// their stdout diffable.
fn simulate(session: &mut dyn Session, graph: &gsim::Graph, cycles: u64, tag: &str) {
    let start = std::time::Instant::now();
    session.step(cycles).unwrap_or_else(|e| die(&e.to_string()));
    let secs = start.elapsed().as_secs_f64();
    eprintln!(
        "simulated {} cycles in {:.3} s ({:.1} kHz){tag}",
        cycles,
        secs,
        cycles as f64 / secs.max(1e-12) / 1e3
    );
    for &out in graph.outputs() {
        let name = graph.display_name(out);
        if let Ok(v) = session.peek(&name) {
            println!("{name} = {v}");
        }
    }
}

/// The `--backend aot` path: emit → `rustc -O` → spawn the compiled
/// binary in persistent server mode, then drive it through the same
/// [`Session`] trait (and print the same output lines) as the
/// interpreter backend, so the two can be diffed directly.
fn run_aot(
    graph: &gsim::Graph,
    path: &str,
    preset: Preset,
    opts: gsim::OptOptions,
    cycles: u64,
    vcd: Option<&str>,
    emit_rust: Option<&str>,
) {
    let (sim, report) = Compiler::new(graph)
        .options(opts)
        .build_aot()
        .unwrap_or_else(|e| die(&e.to_string()));
    eprintln!("design   : {} ({})", graph.name(), path);
    eprintln!("preset   : {} [aot backend]", preset.name());
    eprintln!(
        "nodes    : {} -> {}",
        report.nodes_before, report.nodes_after
    );
    eprintln!("supernodes: {}", report.supernodes);
    eprintln!(
        "aot      : emitted {} B in {:.1} ms, rustc {:.2} s, binary {} B, {} B state",
        report.code_bytes,
        report.emit_time.as_secs_f64() * 1e3,
        report.rustc_time.as_secs_f64(),
        report.binary_bytes,
        report.data_bytes
    );
    if let Some(out) = emit_rust {
        std::fs::copy(&sim.source_path, out)
            .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        eprintln!("emitted  : {out}");
    }
    if cycles > 0 {
        let mut session = sim.session().unwrap_or_else(|e| die(&e.to_string()));
        // Tracing goes through the session's wire subscription
        // (`trace on` + streamed `chg` records), so the VCD this
        // writes is the compiled binary's own change detection —
        // diffable bit-for-bit against the interpreter backends'.
        if let Some(p) = vcd {
            session
                .trace_start(None, open_vcd(p))
                .unwrap_or_else(|e| die(&e.to_string()));
        }
        simulate(&mut session, graph, cycles, " [compiled binary]");
        if let Some(p) = vcd {
            session.trace_stop().unwrap_or_else(|e| die(&e.to_string()));
            eprintln!("vcd      : {p}");
        }
    }
}

/// `gsim serve`: run the multi-tenant simulation service in the
/// foreground until a client sends `shutdown`.
fn cmd_serve(args: &[String]) {
    let mut socket: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut cache_capacity: Option<usize> = None;
    let mut max_sessions: Option<usize> = None;
    let mut idle_timeout: Option<u64> = None;
    let mut faults: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = it.next().cloned(),
            "--cache-dir" => cache_dir = it.next().cloned(),
            "--cache-capacity" => cache_capacity = Some(parse(it.next(), "--cache-capacity")),
            "--max-sessions" => max_sessions = Some(parse(it.next(), "--max-sessions")),
            "--idle-timeout" => idle_timeout = Some(parse(it.next(), "--idle-timeout")),
            "--faults" => faults = it.next().cloned(),
            other => die(&format!("unknown serve flag {other}")),
        }
    }
    let socket = socket.unwrap_or_else(|| die("serve needs --socket <endpoint>"));
    let cache_dir = cache_dir.unwrap_or_else(|| die("serve needs --cache-dir <dir>"));
    let mut cfg = ServerConfig::new(Endpoint::parse(&socket), cache_dir);
    if let Some(n) = cache_capacity {
        cfg.cache_capacity = n;
    }
    if let Some(n) = max_sessions {
        cfg.max_sessions = n;
    }
    if let Some(secs) = idle_timeout {
        cfg.idle_timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
    }
    // Chaos harnesses inject deterministic faults via --faults or the
    // GSIM_FAULT environment variable (flag wins when both are set).
    cfg.faults = match faults {
        Some(spec) => {
            gsim::FaultPlan::parse(&spec).unwrap_or_else(|e| die(&format!("--faults: {e}")))
        }
        None => gsim::FaultPlan::from_env(),
    };
    let server = Server::start(cfg).unwrap_or_else(|e| die(&format!("cannot start server: {e}")));
    // Parseable readiness line (tests/scripts wait for it).
    println!("listening {}", server.endpoint());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
}

/// `gsim client`: open one remote session, run it, and print the same
/// `name = value` output lines as the local backends (CI diffs them).
fn cmd_client(args: &[String]) {
    let mut input: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut backend = "aot".to_string();
    let mut cycles: u64 = 0;
    let mut vcd: Option<String> = None;
    let mut stats = false;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = it.next().cloned(),
            "--backend" => backend = it.next().cloned().unwrap_or(backend),
            "--cycles" => cycles = parse(it.next(), "--cycles"),
            "--vcd" => vcd = it.next().cloned(),
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => die(&format!("unknown client flag {other}")),
        }
    }
    if vcd.is_some() && cycles == 0 {
        die("--vcd captures value changes while simulating; give it --cycles N");
    }
    let socket = socket.unwrap_or_else(|| die("client needs --socket <endpoint>"));
    let ep = Endpoint::parse(&socket);
    // Bounded reconnect-with-backoff: rides out a service that is
    // still binding its socket (scripts start `serve` concurrently).
    let mut session =
        ClientSession::connect_with_retry(&ep, 5, std::time::Duration::from_millis(50))
            .unwrap_or_else(|e| die(&format!("cannot connect: {e}")));
    if let Some(path) = input {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let info = session
            .open_design(&src, &backend)
            .unwrap_or_else(|e| die(&e.to_string()));
        eprintln!(
            "ready    : key={} status={} ({} ms)",
            info.key, info.status, info.ready_ms
        );
        if cycles > 0 {
            // The remote trace subscription: the server streams `chg`
            // records over the same socket, and the client session
            // reassembles them into the VCD file.
            if let Some(p) = vcd.as_deref() {
                session
                    .trace_start(None, open_vcd(p))
                    .unwrap_or_else(|e| die(&e.to_string()));
            }
            let start = std::time::Instant::now();
            session.step(cycles).unwrap_or_else(|e| die(&e.to_string()));
            let secs = start.elapsed().as_secs_f64();
            eprintln!(
                "simulated {} cycles in {:.3} s ({:.1} kHz) [remote session]",
                cycles,
                secs,
                cycles as f64 / secs.max(1e-12) / 1e3
            );
            if let Some(p) = vcd.as_deref() {
                session.trace_stop().unwrap_or_else(|e| die(&e.to_string()));
                eprintln!("vcd      : {p}");
            }
            // The design's portable signal surface, via the wire-level
            // `list` command: print outputs exactly like the local
            // backends (signals = outputs then inputs, deduplicated).
            let inputs = session.inputs().unwrap_or_else(|e| die(&e.to_string()));
            let signals = session.signals().unwrap_or_else(|e| die(&e.to_string()));
            for sig in &signals {
                if inputs.iter().any(|i| i.name == sig.name) {
                    continue;
                }
                let v = session
                    .peek(&sig.name)
                    .unwrap_or_else(|e| die(&e.to_string()));
                println!("{} = {v}", sig.name);
            }
        }
    }
    if stats {
        let s = session.stats().unwrap_or_else(|e| die(&e.to_string()));
        println!("{}", s.render_wire());
    }
    if shutdown {
        session
            .shutdown_server()
            .unwrap_or_else(|e| die(&e.to_string()));
    }
}

/// `gsim explore`: warm one session, fork it into a worker pool, and
/// run N perturbed variants of a scenario — printing the same
/// canonical `branch` lines locally (via [`gsim::BranchResult`]) and
/// remotely (via the service's `explore` command), so the two modes
/// diff textually.
fn cmd_explore(args: &[String]) {
    let mut input: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut backend = "interp".to_string();
    let mut branches: usize = 8;
    let mut scenario_file: Option<String> = None;
    let mut cycles: u64 = 100;
    let mut warmup: u64 = 0;
    let mut workers: usize = 0;
    let mut watch: Vec<String> = Vec::new();
    let mut divergence = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = it.next().cloned(),
            "--backend" => backend = it.next().cloned().unwrap_or(backend),
            "--branches" => branches = parse(it.next(), "--branches"),
            "--scenario" => scenario_file = it.next().cloned(),
            "--cycles" => cycles = parse(it.next(), "--cycles"),
            "--warmup" => warmup = parse(it.next(), "--warmup"),
            "--workers" => workers = parse(it.next(), "--workers"),
            "--watch" => {
                watch = it
                    .next()
                    .map(|s| s.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
            }
            "--divergence" => divergence = true,
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => die(&format!("unknown explore flag {other}")),
        }
    }
    let path = input.unwrap_or_else(|| die("explore needs a <design.fir>"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));

    // The base scenario: an explicit stimulus file, or a synthesized
    // one driving every data input to 1 for `--cycles` cycles (a
    // frame per cycle, so `perturb` has values to vary).
    let scenario_of = |inputs: &[String]| -> gsim::Scenario {
        match &scenario_file {
            Some(f) => {
                let text = std::fs::read_to_string(f)
                    .unwrap_or_else(|e| die(&format!("cannot read {f}: {e}")));
                gsim::Scenario::parse(&text).unwrap_or_else(|e| die(&e.to_string()))
            }
            None => {
                let frame: Vec<(&str, u64)> = inputs
                    .iter()
                    .filter(|n| n.as_str() != "reset" && n.as_str() != "clock")
                    .map(|n| (n.as_str(), 1))
                    .collect();
                gsim::Scenario::new()
                    .frame(&frame)
                    .repeat(cycles.saturating_sub(1))
            }
        }
    };

    if let Some(socket) = socket {
        // Remote: one service session explores on the server side and
        // streams back the canonical branch lines.
        let ep = gsim::Endpoint::parse(&socket);
        let mut session =
            ClientSession::connect_with_retry(&ep, 5, std::time::Duration::from_millis(50))
                .unwrap_or_else(|e| die(&format!("cannot connect: {e}")));
        let info = session
            .open_design(&src, &backend)
            .unwrap_or_else(|e| die(&e.to_string()));
        eprintln!(
            "ready    : key={} status={} ({} ms)",
            info.key, info.status, info.ready_ms
        );
        if warmup > 0 {
            session.step(warmup).unwrap_or_else(|e| die(&e.to_string()));
        }
        let inputs: Vec<String> = session
            .inputs()
            .unwrap_or_else(|e| die(&e.to_string()))
            .into_iter()
            .map(|i| i.name)
            .collect();
        let sc = scenario_of(&inputs);
        let start = std::time::Instant::now();
        let lines = session
            .explore(&sc, branches)
            .unwrap_or_else(|e| die(&e.to_string()));
        let secs = start.elapsed().as_secs_f64();
        for line in &lines {
            println!("{line}");
        }
        eprintln!(
            "explored {} branches x {} cycles in {:.3} s ({:.1} branches/s) [remote session]",
            lines.len(),
            sc.cycles(),
            secs,
            lines.len() as f64 / secs.max(1e-12)
        );
        return;
    }

    let graph = gsim_firrtl::compile(&src).unwrap_or_else(|e| die(&e));
    let engine = match backend.as_str() {
        "interp" => gsim::EngineChoice::Essential,
        "jit" => gsim::EngineChoice::Threaded,
        "aot" => gsim::EngineChoice::Aot,
        other => die(&format!("unknown backend {other} (interp|jit|aot)")),
    };
    let mut session = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_session(engine)
        .unwrap_or_else(|e| die(&e.to_string()));
    if warmup > 0 {
        session.step(warmup).unwrap_or_else(|e| die(&e.to_string()));
    }
    let inputs: Vec<String> = session
        .inputs()
        .unwrap_or_else(|e| die(&e.to_string()))
        .into_iter()
        .map(|i| i.name)
        .collect();
    let sc = scenario_of(&inputs);
    let opts = gsim::ExploreOptions {
        workers,
        watch,
        divergence,
        ..gsim::ExploreOptions::default()
    };
    let start = std::time::Instant::now();
    let report = gsim::Explorer::new(&mut *session)
        .options(opts)
        .run(&sc, branches, None)
        .unwrap_or_else(|e| die(&e.to_string()));
    let secs = start.elapsed().as_secs_f64();
    for b in &report.branches {
        println!("{}", b.render_wire());
        if let Some(d) = b.divergence_cycle {
            eprintln!("  branch {} diverged at cycle {d}", b.index);
        }
    }
    eprintln!(
        "explored {} branches x {} cycles in {:.3} s ({:.1} branches/s; \
         {} workers, {} forks, {} recoveries, {} retries)",
        report.branches.len(),
        sc.cycles(),
        secs,
        report.branches.len() as f64 / secs.max(1e-12),
        report.workers,
        report.forks,
        report.recoveries,
        report.total_retries()
    );
}

/// `gsim wavediff`: parse two VCD files, canonicalize their change
/// histories, and report the differences — the CI matrix's
/// cross-backend correctness check. Exit status 0 means the signal
/// histories are identical; 1 means they differ (each difference on
/// its own stdout line).
fn cmd_wavediff(args: &[String]) {
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    let [a_path, b_path] = files.as_slice() else {
        die("wavediff needs exactly two .vcd files");
    };
    let read = |p: &str| -> gsim::Wave {
        let text =
            std::fs::read_to_string(p).unwrap_or_else(|e| die(&format!("cannot read {p}: {e}")));
        gsim::parse_vcd(&text).unwrap_or_else(|e| die(&format!("{p}: {e}")))
    };
    let a = read(a_path);
    let b = read(b_path);
    let diffs = gsim::wave_diff(&a, &b);
    if diffs.is_empty() {
        println!(
            "identical: {} signals, {} vs {} change records",
            a.signals.len(),
            a.changes.len(),
            b.changes.len()
        );
        return;
    }
    for d in &diffs {
        println!("{d}");
    }
    eprintln!(
        "error: {} signal histories differ ({a_path} vs {b_path})",
        diffs.len()
    );
    std::process::exit(1);
}

/// Opens a `--vcd` output file as a boxed wave sink for
/// [`Session::trace_start`].
fn open_vcd(path: &str) -> Box<dyn gsim::WaveSink> {
    let f =
        std::fs::File::create(path).unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
    Box::new(gsim::VcdWriter::new(std::io::BufWriter::new(f)))
}

fn parse<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

fn usage() {
    println!(
        "gsim <design.fir> [--preset gsim|verilator|essent|arcilator] \
         [--backend interp|jit|aot] [--threads N] [--max-supernode-size N] \
         [--no-fuse] [--no-layout] [--no-threaded] [--cycles N] [--vcd out.vcd] \
         [--emit-cpp out.cc] [--emit-rust out.rs]\n\
         gsim serve --socket <ep> --cache-dir <dir> [--cache-capacity N] \
         [--max-sessions N] [--idle-timeout SECS] [--faults SPEC]\n\
         gsim client <design.fir> --socket <ep> [--backend aot|interp|jit] \
         [--cycles N] [--vcd out.vcd] [--stats] [--shutdown]\n\
         gsim explore <design.fir> [--branches N] [--backend interp|jit|aot] \
         [--scenario file] [--cycles N] [--warmup N] [--workers N] \
         [--watch a,b] [--divergence] [--socket <ep>]\n\
         gsim wavediff <a.vcd> <b.vcd>"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
