//! GSIM: an essential-signal compiled RTL simulator.
//!
//! Reproduction of *"GSIM: Accelerating RTL Simulation for Large-Scale
//! Designs"* (DAC 2025). GSIM reads FIRRTL, optimizes the circuit graph
//! at three granularities — supernode, node, and bit level — and
//! simulates only the *active* part of the design each cycle.
//!
//! This crate is the public facade tying the stack together:
//!
//! * [`Compiler`] — front end + optimization pipeline + engine
//!   selection in one builder. [`Compiler::build_session`] returns a
//!   backend-agnostic [`Session`] (`Box<dyn Session>`) for any
//!   [`EngineChoice`], including the persistent AoT server process.
//! * [`Preset`] — ready-made configurations standing in for every
//!   simulator in the paper's evaluation: Verilator (single- and
//!   multi-threaded), ESSENT, Arcilator, and GSIM itself.
//! * [`OptOptions`] — one switch per paper technique, so the Figure 8
//!   breakdown can apply them incrementally.
//! * [`Server`] / [`ClientSession`] (re-exported from `gsim_server`) —
//!   the multi-tenant simulation service: many concurrent remote
//!   sessions over one content-addressed compiled-artifact cache
//!   (CLI: `gsim serve` / `gsim client`).
//! * [`Scenario`] / [`Explorer`] (re-exported from `gsim_sim`) — the
//!   typed stimulus description shared by every backend and the
//!   snapshot-fork exploration engine that runs N divergent branches
//!   of it from one warmed state (CLI: `gsim explore`).
//! * [`Wave`] / [`VcdWriter`] / [`wave_diff`] (re-exported from
//!   `gsim_wave`) — change-driven waveform capture from every
//!   backend via [`Session::trace_start`], IEEE-1364 VCD in and out,
//!   and canonicalized cross-backend comparison (CLI: `gsim --vcd`,
//!   `gsim wavediff`).
//!
//! # Quickstart
//!
//! ```
//! use gsim::{Compiler, Preset};
//!
//! let graph = gsim_firrtl::compile(r#"
//! circuit Counter :
//!   module Counter :
//!     input clock : Clock
//!     input reset : UInt<1>
//!     output out : UInt<8>
//!     reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
//!     c <= tail(add(c, UInt<8>(1)), 1)
//!     out <= c
//! "#).unwrap();
//!
//! let (mut sim, report) = Compiler::new(&graph).preset(Preset::Gsim).build().unwrap();
//! sim.run(100);
//! assert_eq!(sim.peek_u64("out"), Some(99));
//! assert!(report.nodes_after <= report.nodes_before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[allow(deprecated)] // kept so downstream `Stimulus` users get the rename hint
pub use gsim_codegen::Stimulus;
pub use gsim_codegen::{AotRun, AotSession, AotSim, ArtifactCache, ArtifactKey};
pub use gsim_graph::Graph;
pub use gsim_passes::{PassOptions, PassStats};
pub use gsim_server::{ClientSession, Endpoint, Server, ServerConfig, ServiceStats};
pub use gsim_sim::{
    BranchResult, Counters, EngineKind, ExploreOptions, ExploreReport, Explorer, FaultPlan,
    FusionStats, GsimError, InputFrame, InputHandle, MemoryInfo, RecoveryStats, Scenario,
    SendSessionFactory, Session, SessionFactory, SessionFrame, SignalInfo, SimOptions, Simulator,
    SnapshotId, SuperviseOptions, SupervisedSession, Value,
};
pub use gsim_wave::{
    diff as wave_diff, first_difference, parse_vcd, MemSink, VcdWriter, Wave, WaveCell, WaveDiff,
    WaveSignal, WaveSink,
};

use gsim_partition::{Algorithm, PartitionOptions};
use std::time::{Duration, Instant};

/// Ready-made simulator configurations matching the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Verilator-like: sequential full-cycle evaluation of every node,
    /// light peephole optimization only (paper Listing 1).
    Verilator,
    /// Verilator `--threads N`: levelized parallel full-cycle.
    VerilatorMt(usize),
    /// ESSENT-like: essential-signal simulation, MFFC partitioning,
    /// per-flag active-bit checks, branchless activation, resets in the
    /// fast path.
    Essent,
    /// Arcilator-like: full-cycle with aggressive IR-level expression
    /// optimization.
    Arcilator,
    /// GSIM: everything in the paper's §III.
    Gsim,
    /// GSIM `--threads N`: the full GSIM configuration with the
    /// essential-signal sweep parallelized over the supernode
    /// dependency DAG's levels.
    GsimMt(usize),
    /// GSIM-JIT: the full GSIM configuration executed through the
    /// in-process threaded-code backend — compile-free AoT-class
    /// dispatch (CLI: `--backend jit`).
    GsimJit,
}

impl Preset {
    /// Display name used in reports.
    pub fn name(self) -> String {
        match self {
            Preset::Verilator => "Verilator".into(),
            Preset::VerilatorMt(n) => format!("Verilator-{n}T"),
            Preset::Essent => "ESSENT".into(),
            Preset::Arcilator => "Arcilator".into(),
            Preset::Gsim => "GSIM".into(),
            Preset::GsimMt(n) => format!("GSIM-{n}T"),
            Preset::GsimJit => "GSIM-JIT".into(),
        }
    }

    /// The option set this preset expands to.
    pub fn options(self) -> OptOptions {
        match self {
            Preset::Verilator => OptOptions {
                engine: EngineChoice::FullCycle,
                ..OptOptions::none()
            },
            Preset::VerilatorMt(n) => OptOptions {
                engine: EngineChoice::FullCycleMt(n),
                ..OptOptions::none()
            },
            Preset::Essent => OptOptions {
                engine: EngineChoice::Essential,
                redundant_elim: true,
                supernode: SupernodeChoice::Mffc,
                ..OptOptions::none()
            },
            Preset::Arcilator => OptOptions {
                engine: EngineChoice::FullCycle,
                expression_simplify: true,
                redundant_elim: true,
                node_inline: true,
                node_extract: true,
                ..OptOptions::none()
            },
            Preset::Gsim => OptOptions::all(),
            Preset::GsimMt(n) => OptOptions {
                engine: EngineChoice::EssentialMt(n),
                ..OptOptions::all()
            },
            Preset::GsimJit => OptOptions {
                engine: EngineChoice::Threaded,
                ..OptOptions::all()
            },
        }
    }
}

/// Engine family selector (subset of [`EngineKind`] used by options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Sequential full-cycle.
    FullCycle,
    /// Levelized multithreaded full-cycle.
    FullCycleMt(usize),
    /// Essential-signal (active bits).
    Essential,
    /// Essential-signal swept level-parallel across N threads.
    EssentialMt(usize),
    /// Essential-signal dispatched through the in-process threaded-code
    /// backend: the execution image is lowered once, at compile time,
    /// into pre-resolved handler records, so simulation starts in
    /// milliseconds but the hot loop does no decode (CLI: `--backend
    /// jit`).
    Threaded,
    /// Ahead-of-time compiled backend: emit a standalone Rust
    /// simulator, `rustc -O` it, and run the native binary. Built via
    /// [`Compiler::build_aot`] (not [`Compiler::build`], which returns
    /// an in-process interpreter).
    Aot,
}

/// Supernode construction selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupernodeChoice {
    /// One node per supernode (no grouping).
    None,
    /// Plain Kernighan sequential partition.
    Kernighan,
    /// ESSENT's MFFC zones.
    Mffc,
    /// GSIM's enhanced algorithm (pre-grouping + Kernighan).
    Gsim,
}

impl SupernodeChoice {
    fn algorithm(self) -> Algorithm {
        match self {
            SupernodeChoice::None => Algorithm::None,
            SupernodeChoice::Kernighan => Algorithm::Kernighan,
            SupernodeChoice::Mffc => Algorithm::MffcBased,
            SupernodeChoice::Gsim => Algorithm::Gsim,
        }
    }
}

/// One flag per paper technique (§III / Figure 8), plus engine and
/// partition knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct OptOptions {
    pub engine: EngineChoice,
    /// ① expression simplification.
    pub expression_simplify: bool,
    /// ② redundant node elimination.
    pub redundant_elim: bool,
    /// ③ node inline.
    pub node_inline: bool,
    /// ④ supernode construction algorithm.
    pub supernode: SupernodeChoice,
    /// ⑤ node extraction (CSE).
    pub node_extract: bool,
    /// ⑥ reset handling optimization (slow path).
    pub reset_slow_path: bool,
    /// ⑦ checking multiple active bits with a single condition.
    pub check_multiple_bits: bool,
    /// ⑧ activation overhead optimization (cost-model branchy vs
    /// branchless).
    pub activation_cost_model: bool,
    /// ⑨ node splitting at the bit level.
    pub bit_split: bool,
    /// ⑩ locality-aware state layout: segregate input / register /
    /// combinational slot spaces, numbering combinational slots in
    /// sweep order (substrate-level; bit-identical results).
    pub locality_layout: bool,
    /// ⑪ superinstruction fusion: collapse frequent adjacent
    /// instruction pairs in the execution image (substrate-level;
    /// bit-identical results — the `--no-fuse` ablation).
    pub superinstruction_fusion: bool,
    /// ⑫ threaded-code dispatch: lower the execution image into
    /// pre-resolved handler records at compile time. Only effective
    /// under [`EngineChoice::Threaded`]; off is the `--no-threaded`
    /// ablation (substrate-level; bit-identical results).
    pub threaded_dispatch: bool,
    /// Maximum supernode size (the paper's command-line knob; Fig. 9).
    pub max_supernode_size: usize,
}

impl OptOptions {
    /// Everything off: the unoptimized essential-signal baseline of
    /// Figure 8 (per-node active bits, Listing 2).
    pub fn none() -> OptOptions {
        OptOptions {
            engine: EngineChoice::Essential,
            expression_simplify: false,
            redundant_elim: false,
            node_inline: false,
            supernode: SupernodeChoice::None,
            node_extract: false,
            reset_slow_path: false,
            check_multiple_bits: false,
            activation_cost_model: false,
            bit_split: false,
            locality_layout: false,
            superinstruction_fusion: false,
            threaded_dispatch: false,
            max_supernode_size: PartitionOptions::DEFAULT_MAX_SIZE,
        }
    }

    /// The full GSIM configuration.
    pub fn all() -> OptOptions {
        OptOptions {
            engine: EngineChoice::Essential,
            expression_simplify: true,
            redundant_elim: true,
            node_inline: true,
            supernode: SupernodeChoice::Gsim,
            node_extract: true,
            reset_slow_path: true,
            check_multiple_bits: true,
            activation_cost_model: true,
            bit_split: true,
            locality_layout: true,
            superinstruction_fusion: true,
            threaded_dispatch: true,
            max_supernode_size: PartitionOptions::DEFAULT_MAX_SIZE,
        }
    }

    /// The Figure 8 staircase: configurations applying the paper's nine
    /// techniques incrementally, starting from [`OptOptions::none`].
    /// Returns `(technique name, cumulative options)` pairs; entry 0 is
    /// the baseline.
    pub fn staircase() -> Vec<(&'static str, OptOptions)> {
        let mut cur = OptOptions::none();
        let mut out = vec![("baseline", cur)];
        cur.expression_simplify = true;
        out.push(("expression simplification", cur));
        cur.redundant_elim = true;
        out.push(("redundant node elimination", cur));
        cur.node_inline = true;
        out.push(("node inline", cur));
        cur.supernode = SupernodeChoice::Gsim;
        out.push(("supernode", cur));
        cur.node_extract = true;
        out.push(("node extraction", cur));
        cur.reset_slow_path = true;
        out.push(("reset handling optimization", cur));
        cur.check_multiple_bits = true;
        out.push(("checking multiple active bits", cur));
        cur.activation_cost_model = true;
        out.push(("activation overhead optimization", cur));
        cur.bit_split = true;
        out.push(("node splitting at bit level", cur));
        // Substrate-level steps beyond the paper's nine: the flat
        // execution image's ablatable switches, kept at the end so the
        // paper staircase stays comparable.
        cur.locality_layout = true;
        out.push(("locality-aware state layout", cur));
        cur.superinstruction_fusion = true;
        out.push(("superinstruction fusion", cur));
        out
    }

    /// The node/bit-level pass configuration these options expand to
    /// (shared by `build`, `build_aot`, and the CLI's emit paths so
    /// the mapping lives in exactly one place).
    pub fn pass_options(&self) -> PassOptions {
        PassOptions {
            expression_simplify: self.expression_simplify,
            redundant_elim: self.redundant_elim,
            node_inline: self.node_inline,
            node_extract: self.node_extract,
            bit_split: self.bit_split,
            reset_slow_path: self.reset_slow_path,
        }
    }

    /// The supernode partitioning these options expand to (shared
    /// with the CLI's emit paths).
    pub fn partition_options(&self) -> PartitionOptions {
        PartitionOptions {
            algorithm: self.supernode.algorithm(),
            max_size: self.max_supernode_size,
        }
    }

    fn sim_options(&self) -> Result<SimOptions, GsimError> {
        let engine = match self.engine {
            EngineChoice::FullCycle => EngineKind::FullCycle,
            EngineChoice::FullCycleMt(n) => EngineKind::FullCycleMt { threads: n },
            EngineChoice::Essential => EngineKind::Essential,
            EngineChoice::EssentialMt(n) => EngineKind::EssentialMt { threads: n },
            EngineChoice::Threaded => EngineKind::Threaded,
            EngineChoice::Aot => {
                return Err(GsimError::Config(
                    "the AoT backend compiles to a native binary; use Compiler::build_aot or \
                     Compiler::build_session (CLI: `gsim --backend aot`)"
                        .into(),
                ))
            }
        };
        Ok(SimOptions {
            engine,
            partition: self.partition_options(),
            check_multiple_bits: self.check_multiple_bits,
            activation_cost_model: self.activation_cost_model,
            reset_slow_path: self.reset_slow_path,
            superinstr_fusion: self.superinstruction_fusion,
            locality_layout: self.locality_layout,
            threaded_dispatch: self.threaded_dispatch,
        })
    }
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions::all()
    }
}

/// What compilation did (sizes, pass statistics, timings).
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Nodes before optimization ("IR node", Table I).
    pub nodes_before: usize,
    /// Edges before optimization ("IR edge", Table I).
    pub edges_before: usize,
    /// Nodes after the pass pipeline.
    pub nodes_after: usize,
    /// Edges after the pass pipeline.
    pub edges_after: usize,
    /// Pass statistics.
    pub pass_stats: PassStats,
    /// Number of supernodes in the compiled schedule.
    pub supernodes: usize,
    /// Total compile (emission) time: passes + partition + bytecode.
    pub compile_time: Duration,
    /// Partitioning share of the compile time (Table III).
    pub partition_time: Duration,
    /// Compiled bytecode instruction count (code-size proxy; fused
    /// pairs count once).
    pub instrs: usize,
    /// 16-byte units in the flat execution image's code arena.
    pub image_units: usize,
    /// What the superinstruction fusion pass collapsed.
    pub fusion: FusionStats,
    /// Bytes of simulated state (Table IV data size).
    pub state_bytes: usize,
}

/// Builder: graph → optimization pipeline → compiled simulator.
#[derive(Debug)]
pub struct Compiler<'g> {
    graph: &'g Graph,
    opts: OptOptions,
}

impl<'g> Compiler<'g> {
    /// Starts a compilation of `graph` with full GSIM options.
    pub fn new(graph: &'g Graph) -> Compiler<'g> {
        Compiler {
            graph,
            opts: OptOptions::all(),
        }
    }

    /// Selects a simulator preset.
    pub fn preset(mut self, preset: Preset) -> Self {
        self.opts = preset.options();
        self
    }

    /// Sets explicit options.
    pub fn options(mut self, opts: OptOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the maximum supernode size (paper Figure 9's knob).
    pub fn max_supernode_size(mut self, n: usize) -> Self {
        self.opts.max_supernode_size = n;
        self
    }

    /// Runs the pass pipeline and compiles an engine.
    ///
    /// # Errors
    ///
    /// Returns [`GsimError`] for invalid graphs or configurations.
    pub fn build(self) -> Result<(Simulator, CompileReport), GsimError> {
        let start = Instant::now();
        let sim_opts = self.opts.sim_options()?;
        let nodes_before = self.graph.num_nodes();
        let edges_before = self.graph.num_edges();
        let (optimized, pass_stats) =
            gsim_passes::run(self.graph.clone(), &self.opts.pass_options());
        let nodes_after = optimized.num_nodes();
        let edges_after = optimized.num_edges();
        let sim = Simulator::compile(&optimized, &sim_opts)?;
        let report = CompileReport {
            nodes_before,
            edges_before,
            nodes_after,
            edges_after,
            pass_stats,
            supernodes: sim.num_supernodes(),
            compile_time: start.elapsed(),
            partition_time: sim.partition_time(),
            instrs: sim.num_instrs(),
            image_units: sim.image_units(),
            fusion: sim.fusion_stats(),
            state_bytes: sim.state_bytes(),
        };
        Ok((sim, report))
    }
}

/// What an ahead-of-time compilation did (sizes and timings for the
/// paper's Table IV shape: emission, host-compiler, binary).
#[derive(Debug, Clone)]
pub struct AotReport {
    /// Nodes before optimization.
    pub nodes_before: usize,
    /// Nodes after the pass pipeline.
    pub nodes_after: usize,
    /// Pass statistics.
    pub pass_stats: PassStats,
    /// Supernodes in the emitted schedule.
    pub supernodes: usize,
    /// Rust-source emission time.
    pub emit_time: Duration,
    /// `rustc -O` wall-clock time.
    pub rustc_time: Duration,
    /// Emitted source bytes ("code size").
    pub code_bytes: usize,
    /// Bytes of simulated state in the compiled struct ("data size").
    pub data_bytes: usize,
    /// Size of the native binary in bytes.
    pub binary_bytes: u64,
}

impl<'g> Compiler<'g> {
    /// Runs the pass pipeline, emits a standalone Rust simulator, and
    /// compiles it with the host `rustc` — the ahead-of-time backend
    /// ([`EngineChoice::Aot`]). The returned [`gsim_codegen::AotSim`]
    /// runs the native binary over stimulus streams (batch) or serves
    /// a persistent interactive [`AotSession`] via
    /// [`gsim_codegen::AotSim::session`].
    ///
    /// # Errors
    ///
    /// Returns emission or toolchain diagnostics as
    /// [`GsimError::Backend`].
    pub fn build_aot(self) -> Result<(gsim_codegen::AotSim, AotReport), GsimError> {
        let nodes_before = self.graph.num_nodes();
        let (optimized, pass_stats) =
            gsim_passes::run(self.graph.clone(), &self.opts.pass_options());
        let nodes_after = optimized.num_nodes();
        let aot_opts = gsim_codegen::AotOptions {
            partition: self.opts.partition_options(),
            keep_dir: false,
        };
        let sim = gsim_codegen::compile_aot(&optimized, &aot_opts)?;
        let report = AotReport {
            nodes_before,
            nodes_after,
            pass_stats,
            supernodes: sim.emit.supernodes,
            emit_time: sim.emit.emit_time,
            rustc_time: sim.rustc_time,
            code_bytes: sim.emit.code_bytes,
            data_bytes: sim.emit.data_bytes,
            binary_bytes: sim.binary_bytes,
        };
        Ok((sim, report))
    }
}

impl<'g> Compiler<'g> {
    /// Builds a backend-agnostic [`Session`] for the given engine:
    /// the one entry point behind which [`Compiler::build`] (the
    /// interpreter engines) and [`Compiler::build_aot`] (a persistent
    /// compiled process in server mode) converge. Testbenches written
    /// against `Box<dyn Session>` run identically on every backend.
    ///
    /// ```no_run
    /// use gsim::{Compiler, EngineChoice, Preset};
    ///
    /// let graph = gsim_firrtl::compile("...").unwrap();
    /// for engine in [EngineChoice::Essential, EngineChoice::Aot] {
    ///     let mut session = Compiler::new(&graph)
    ///         .preset(Preset::Gsim)
    ///         .build_session(engine)
    ///         .unwrap();
    ///     session.poke_u64("reset", 1).unwrap();
    ///     session.step(2).unwrap();
    ///     let out = session.peek("out").unwrap();
    ///     println!("{} says {out}", session.backend());
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`GsimError`] for invalid graphs, configurations, or
    /// (on the AoT path) toolchain failures.
    pub fn build_session(mut self, engine: EngineChoice) -> Result<Box<dyn Session>, GsimError> {
        self.opts.engine = engine;
        match engine {
            EngineChoice::Aot => {
                let (sim, _) = self.build_aot()?;
                let session = sim.session().map_err(GsimError::from)?;
                // The session holds its own handle on the scratch
                // directory, so dropping `sim` here is safe: the
                // binary outlives the `AotSim`.
                Ok(Box::new(session))
            }
            _ => {
                let (sim, _) = self.build()?;
                Ok(Box::new(sim))
            }
        }
    }
}

/// Compiles FIRRTL source text directly into a simulator.
///
/// # Errors
///
/// Returns parse, lowering, or compilation diagnostics.
pub fn compile_firrtl(src: &str, preset: Preset) -> Result<(Simulator, CompileReport), GsimError> {
    let graph = gsim_firrtl::compile(src).map_err(GsimError::Parse)?;
    Compiler::new(&graph).preset(preset).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    output out : UInt<16>
    reg c : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    c <= tail(add(c, UInt<16>(1)), 1)
    out <= c
"#;

    #[test]
    fn all_presets_simulate_identically() {
        let graph = gsim_firrtl::compile(COUNTER).unwrap();
        for preset in [
            Preset::Verilator,
            Preset::VerilatorMt(2),
            Preset::Essent,
            Preset::Arcilator,
            Preset::Gsim,
            Preset::GsimMt(2),
            Preset::GsimMt(4),
            Preset::GsimJit,
        ] {
            let (mut sim, _) = Compiler::new(&graph).preset(preset).build().unwrap();
            sim.run(500);
            assert_eq!(sim.peek_u64("out"), Some(499), "{}", preset.name());
        }
    }

    #[test]
    fn staircase_has_twelve_entries_and_runs() {
        let graph = gsim_firrtl::compile(COUNTER).unwrap();
        let stairs = OptOptions::staircase();
        // The paper's nine techniques plus baseline, then the two
        // substrate-level image switches (layout, fusion).
        assert_eq!(stairs.len(), 12);
        for (name, opts) in stairs {
            let (mut sim, _) = Compiler::new(&graph).options(opts).build().unwrap();
            sim.run(10);
            assert_eq!(sim.peek_u64("out"), Some(9), "staircase step {name}");
        }
    }

    #[test]
    fn report_reflects_optimization() {
        let graph = gsim_firrtl::compile(
            r#"
circuit R :
  module R :
    input a : UInt<8>
    output y : UInt<8>
    node dead = xor(a, UInt<8>(1))
    node t = and(a, UInt<8>(255))
    y <= t
"#,
        )
        .unwrap();
        let (_, report) = Compiler::new(&graph).preset(Preset::Gsim).build().unwrap();
        assert!(report.nodes_after < report.nodes_before);
        // the whole design folds to an alias: zero instructions is legal
        assert!(report.supernodes > 0);
        assert!(report.state_bytes > 0);
        let (_, raw) = Compiler::new(&graph)
            .preset(Preset::Verilator)
            .build()
            .unwrap();
        assert_eq!(raw.nodes_after, raw.nodes_before);
    }

    #[test]
    fn compile_firrtl_end_to_end() {
        let (mut sim, _) = compile_firrtl(COUNTER, Preset::Gsim).unwrap();
        sim.run(3);
        assert_eq!(sim.peek_u64("out"), Some(2));
        assert!(compile_firrtl("circuit X :", Preset::Gsim).is_err());
    }
}
