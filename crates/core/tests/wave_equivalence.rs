//! Cross-backend waveform equivalence: the interpreter, the threaded
//! (jit) engine, and — when `rustc` is available — the AoT backend
//! must produce *bit-identical* canonical change histories for the
//! same design and stimulus. This is the test behind the
//! `gsim wavediff` CI gate: not just final outputs, the entire value
//! history of every observable signal over the whole run.

use gsim::{Compiler, EngineChoice, Graph, Preset, Session};
use gsim_wave::{SharedBuf, VcdWriter};

fn backends() -> Vec<EngineChoice> {
    let mut v = vec![EngineChoice::Essential, EngineChoice::Threaded];
    if gsim_codegen::rustc_available() {
        v.push(EngineChoice::Aot);
    } else {
        eprintln!("skipping AoT leg: rustc not available");
    }
    v
}

/// Captures `drive` on a fresh session of `engine` with full tracing
/// into a real VCD byte stream (through [`VcdWriter`], so the text
/// format itself is part of what is compared), then parses it back.
fn capture(
    graph: &Graph,
    engine: EngineChoice,
    label: &str,
    drive: &dyn Fn(&mut dyn Session),
) -> gsim::Wave {
    let mut session = Compiler::new(graph)
        .preset(Preset::Gsim)
        .build_session(engine)
        .unwrap_or_else(|e| panic!("{label}: build {engine:?}: {e}"));
    let buf = SharedBuf::new();
    session
        .trace_start(None, Box::new(VcdWriter::new(buf.clone())))
        .unwrap_or_else(|e| panic!("{label}: trace_start on {engine:?}: {e}"));
    drive(session.as_mut());
    session
        .trace_stop()
        .unwrap_or_else(|e| panic!("{label}: trace_stop on {engine:?}: {e}"));
    let text = String::from_utf8(buf.drain()).expect("VCD output is UTF-8");
    gsim::parse_vcd(&text).unwrap_or_else(|e| panic!("{label}: {engine:?} emitted bad VCD: {e}"))
}

/// Runs the same stimulus on every backend and diffs each capture
/// against the interpreter's, failing with the full `wavediff` report
/// on any divergence.
fn assert_equivalent(graph: &Graph, label: &str, drive: &dyn Fn(&mut dyn Session)) {
    let engines = backends();
    let base = capture(graph, engines[0], label, drive);
    assert!(
        !base.changes.is_empty(),
        "{label}: baseline capture recorded no changes"
    );
    for &engine in &engines[1..] {
        let other = capture(graph, engine, label, drive);
        let diffs = gsim::wave_diff(&base, &other);
        assert!(
            diffs.is_empty(),
            "{label}: {:?} vs {engine:?} waveform histories differ:\n{}",
            engines[0],
            diffs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn counter_example_is_wave_identical_across_backends() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/counter.fir"
    ))
    .expect("read examples/counter.fir");
    let graph = gsim_firrtl::compile(&src).expect("compile counter.fir");
    assert_equivalent(&graph, "counter.fir", &|s| {
        s.poke_u64("reset", 1).unwrap();
        s.step(2).unwrap();
        s.poke_u64("reset", 0).unwrap();
        s.step(64).unwrap();
        // A mid-run reset pulse exercises the change-detection path
        // for a value that goes back to a previously-seen state.
        s.poke_u64("reset", 1).unwrap();
        s.step(1).unwrap();
        s.poke_u64("reset", 0).unwrap();
        s.step(16).unwrap();
    });
}

#[test]
fn stucore_fib_is_wave_identical_across_backends() {
    let graph = gsim_designs::stu_core();
    let prog = gsim_workloads::programs::fib(12);
    let cycles = prog.max_cycles;
    let expected = prog.expected_result;
    assert_equivalent(&graph, "stuCore-fib", &move |s| {
        s.load_mem("imem", &prog.image).unwrap();
        s.poke_u64("reset", 1).unwrap();
        s.step(2).unwrap();
        s.poke_u64("reset", 0).unwrap();
        s.step(cycles).unwrap();
        // Identical waves are only meaningful if the program actually
        // ran: check the architectural result on every backend too.
        assert_eq!(s.peek_u64("halt").unwrap(), Some(1), "fib did not halt");
        assert_eq!(s.peek_u64("result").unwrap(), Some(expected));
    });
}

#[test]
fn reset_synchronizer_is_wave_identical_across_backends() {
    let graph = gsim_designs::reset_synchronizer();
    assert_equivalent(&graph, "reset-synchronizer", &|s| {
        // Pulse the async reset at awkward offsets: this design is
        // specifically adversarial about *when* within a commit the
        // reset chain is sampled, so the change histories disagree if
        // any backend applies reset a cycle early.
        s.poke_u64("rst", 1).unwrap();
        s.step(3).unwrap();
        s.poke_u64("rst", 0).unwrap();
        s.step(21).unwrap();
        s.poke_u64("rst", 1).unwrap();
        s.step(1).unwrap();
        s.poke_u64("rst", 0).unwrap();
        s.step(13).unwrap();
    });
}

/// Deterministic per-input stimulus for the randomized netlists: a
/// splitmix-style mix of the cycle and input index, truncated by the
/// backend to the port's declared width (the `poke` contract).
fn mix(cycle: u64, lane: u64) -> u64 {
    let mut z = (cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ (lane.wrapping_mul(0xbf58_476d));
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 27)
}

fn drive_synth(s: &mut dyn Session, cycles: u64) {
    let inputs: Vec<String> = s
        .inputs()
        .unwrap()
        .into_iter()
        .map(|i| i.name)
        .filter(|n| n != "clock" && n != "reset")
        .collect();
    s.poke_u64("reset", 1).unwrap();
    s.step(2).unwrap();
    s.poke_u64("reset", 0).unwrap();
    for c in 0..cycles {
        for (lane, name) in inputs.iter().enumerate() {
            s.poke_u64(name, mix(c, lane as u64)).unwrap();
        }
        s.step(1).unwrap();
    }
}

#[test]
fn randomized_netlists_are_wave_identical_across_backends() {
    for (name, target_nodes) in [("Rocket", 600), ("BOOM", 900)] {
        let params = gsim_designs::SynthParams::for_target(name, target_nodes);
        let graph = gsim_designs::synth_core(&params);
        let label = format!("synth-{name}");
        assert_equivalent(&graph, &label, &|s| drive_synth(s, 48));
    }
}
