//! End-to-end smoke test for the `gsim` CLI binary: compile and
//! simulate a design from `gsim_designs` through the real executable,
//! asserting nonzero simulated cycles and stable optimization stats.

use std::path::PathBuf;
use std::process::Command;

fn write_design(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsim_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // One file per test: both tests run concurrently in this process,
    // and a shared path would race a writer against the other test's
    // spawned gsim reader.
    let path = dir.join(format!("stu_core_{test}.fir"));
    std::fs::write(&path, gsim_designs::stu_core_firrtl()).unwrap();
    path
}

struct Run {
    stderr: String,
    stdout: String,
}

fn run_gsim(design: &PathBuf, extra: &[&str]) -> Run {
    let out = Command::new(env!("CARGO_BIN_EXE_gsim"))
        .arg(design)
        .args(extra)
        .output()
        .expect("failed to spawn gsim binary");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "gsim exited with {:?}\nstderr:\n{stderr}\nstdout:\n{stdout}",
        out.status
    );
    Run { stderr, stdout }
}

/// The `nodes`/`supernodes` report lines, i.e. the optimization stats
/// that must not wobble between runs of the same input.
fn stats_lines(stderr: &str) -> Vec<&str> {
    stderr
        .lines()
        .filter(|l| l.starts_with("nodes") || l.starts_with("supernodes"))
        .collect()
}

#[test]
fn cli_simulates_design_with_stable_stats() {
    let design = write_design("stable_stats");
    let args = ["--preset", "gsim", "--cycles", "100"];

    let first = run_gsim(&design, &args);

    // Nonzero simulated cycles, reported on stderr.
    let sim_line = first
        .stderr
        .lines()
        .find(|l| l.starts_with("simulated"))
        .unwrap_or_else(|| panic!("no 'simulated' line in stderr:\n{}", first.stderr));
    let cycles: u64 = sim_line
        .split_whitespace()
        .nth(1)
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("unparseable simulated line: {sim_line}"));
    assert_eq!(cycles, 100, "expected the requested cycle count");

    // The optimization report is present.
    let stats = stats_lines(&first.stderr);
    assert!(
        stats.iter().any(|l| l.starts_with("nodes")),
        "missing nodes line:\n{}",
        first.stderr
    );
    assert!(
        stats.iter().any(|l| l.starts_with("supernodes")),
        "missing supernodes line:\n{}",
        first.stderr
    );

    // Output values are printed for the design's ports.
    assert!(
        first.stdout.lines().any(|l| l.contains(" = ")),
        "no output port values on stdout:\n{}",
        first.stdout
    );

    // Stable: an identical second run reports identical stats and
    // identical simulated outputs (the whole pipeline is deterministic).
    let second = run_gsim(&design, &args);
    assert_eq!(
        stats,
        stats_lines(&second.stderr),
        "optimization stats wobbled"
    );
    assert_eq!(first.stdout, second.stdout, "simulated outputs wobbled");
}

#[test]
fn cli_presets_agree_on_outputs() {
    let design = write_design("presets_agree");
    let gsim_run = run_gsim(&design, &["--preset", "gsim", "--cycles", "64"]);
    let veri_run = run_gsim(&design, &["--preset", "verilator", "--cycles", "64"]);
    assert_eq!(
        gsim_run.stdout, veri_run.stdout,
        "gsim and verilator presets disagree on simulated outputs"
    );
}

#[test]
fn cli_aot_backend_agrees_with_interpreter() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available");
        return;
    }
    let design = write_design("aot_backend");
    let interp = run_gsim(&design, &["--preset", "gsim", "--cycles", "64"]);
    let aot = run_gsim(&design, &["--backend", "aot", "--cycles", "64"]);
    // Identical `name = <w>'h<hex>` output lines from both backends.
    assert_eq!(
        interp.stdout, aot.stdout,
        "aot backend disagrees with the interpreter on simulated outputs"
    );
    assert!(
        aot.stderr.contains("aot      : emitted"),
        "missing aot stats line:\n{}",
        aot.stderr
    );
    assert!(
        aot.stderr.contains("[compiled binary]"),
        "missing compiled-binary timing line:\n{}",
        aot.stderr
    );
}
