//! Parameterized processor-shaped netlist generator.
//!
//! Stand-in for Rocket / BOOM / XiangShan (whose Chisel sources cannot
//! be elaborated here). The generated cores reproduce the structural
//! properties the paper's techniques exploit:
//!
//! * **one-hot decoders** — `dshl(1, sel)` then single-bit slices, the
//!   exact pattern GSIM's expression simplification rewrites;
//! * **gated functional units** — each FU's operand register only
//!   changes when its select fires, so an idle FU's whole cone stays
//!   inactive: realistic low activity factors (~5% under typical
//!   stimulus);
//! * **wide writeback buses** — FU outputs are concatenated and
//!   consumers slice lanes back out: bit-splitting fodder;
//! * **register files and cache-like tag/data memories**;
//! * **few reset signals fanning out to many registers** — the
//!   precondition for the reset slow path;
//! * **per-lane instruction inputs** — stimulus profiles drive opcode
//!   streams whose mix controls which FUs toggle.
//!
//! The generator is deterministic for a given [`SynthParams`] (seeded
//! RNG), and sizes itself to a target node count.

use gsim_graph::{Expr, Graph, GraphBuilder, NodeId, PrimOp};
use gsim_value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SynthParams {
    /// Design name.
    pub name: String,
    /// Issue lanes (paper: Rocket 1, BOOM 3, XiangShan 6).
    pub lanes: usize,
    /// Parallel logic chains per functional unit.
    pub fu_chains: usize,
    /// Operations per chain.
    pub fu_depth: usize,
    /// Functional-unit clusters per lane.
    pub fus_per_lane: usize,
    /// RNG seed (fixed per design for reproducibility).
    pub seed: u64,
}

impl SynthParams {
    /// Sizes parameters so the generated core lands near `target_nodes`,
    /// with lane counts matching the named paper design.
    pub fn for_target(name: &str, target_nodes: usize) -> SynthParams {
        let (lanes, fu_chains, fu_depth) = match name {
            "Rocket" => (1, 6, 12),
            "BOOM" => (3, 8, 12),
            "XiangShan" => (6, 8, 14),
            _ => (1, 4, 10),
        };
        // Per-FU node cost ≈ chains × depth × ~1.35 (ops + gating +
        // writeback slice logic); solve for the FU count.
        let per_fu = (fu_chains * fu_depth) as f64 * 1.35;
        let overhead_per_lane = 120.0;
        let budget = target_nodes as f64 - lanes as f64 * overhead_per_lane;
        let fus = (budget / (lanes as f64 * per_fu)).max(2.0) as usize;
        SynthParams {
            name: name.to_string(),
            lanes,
            fu_chains,
            fu_depth,
            fus_per_lane: fus.clamp(2, 255),
            seed: 0x9e37_79b9 ^ target_nodes as u64,
        }
    }
}

fn u(x: u64, w: u32) -> Expr {
    Expr::constant(Value::from_u64(x, w))
}

fn r(id: NodeId, w: u32) -> Expr {
    Expr::reference(id, w, false)
}

fn p2(op: PrimOp, a: Expr, b: Expr) -> Expr {
    Expr::prim(op, vec![a, b], vec![]).expect("binary")
}

fn trunc32(e: Expr) -> Expr {
    Expr::truncate(e, 32)
}

/// Generates a synthetic core.
///
/// # Panics
///
/// Panics only on internal width errors (covered by tests).
pub fn synth_core(params: &SynthParams) -> Graph {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut b = GraphBuilder::new(params.name.clone());
    let _clock = b.input("clock", 1, false);
    let reset = b.input("reset", 1, false);

    let sel_bits = (usize::BITS - (params.fus_per_lane - 1).leading_zeros()).max(1);
    let mut lane_signatures: Vec<Expr> = Vec::new();

    // Global always-active heartbeat (performance counters exist in
    // every real core and keep the activity factor nonzero).
    let cycle_ctr = b.reg_with_reset("cycle_ctr", 32, false, reset, Value::zero(32));
    let inc = trunc32(p2(PrimOp::Add, r(cycle_ctr, 32), u(1, 32)));
    b.set_reg_next(cycle_ctr, inc);

    for lane in 0..params.lanes {
        let op_in = b.input(format!("op_in_{lane}"), 32, false);
        // Fetch register.
        let op_r = b.reg_with_reset(format!("l{lane}.fetch"), 32, false, reset, Value::zero(32));
        b.set_reg_next(op_r, r(op_in, 32));

        // Decode: validity + one-hot FU select (the paper's pattern).
        let valid = b.comb(
            format!("l{lane}.valid"),
            Expr::prim(PrimOp::Orr, vec![r(op_r, 32)], vec![]).expect("orr"),
        );
        let fu_sel = b.comb(
            format!("l{lane}.fu_sel"),
            Expr::prim(PrimOp::Bits, vec![r(op_r, 32)], vec![sel_bits + 7, 8]).expect("bits"),
        );
        let onehot_w = 1u32 << sel_bits;
        let onehot = b.comb(
            format!("l{lane}.onehot"),
            p2(PrimOp::Dshl, u(1, 1), r(fu_sel, sel_bits)),
        );

        // Lane register file.
        let regfile = b.mem(format!("l{lane}.regfile"), 32, 32);
        let ra = b.mem_read(
            format!("l{lane}.ra"),
            regfile,
            Expr::prim(PrimOp::Bits, vec![r(op_r, 32)], vec![20, 16]).expect("bits"),
        );
        let rb = b.mem_read(
            format!("l{lane}.rb"),
            regfile,
            Expr::prim(PrimOp::Bits, vec![r(op_r, 32)], vec![25, 21]).expect("bits"),
        );
        let opnd = b.comb(
            format!("l{lane}.opnd"),
            trunc32(p2(
                PrimOp::Xor,
                r(ra, 32),
                trunc32(p2(PrimOp::Add, r(rb, 32), r(op_r, 32))),
            )),
        );

        // Functional units.
        let mut fu_outs: Vec<NodeId> = Vec::new();
        for f in 0..params.fus_per_lane {
            let is_f_raw = b.comb(
                format!("l{lane}.fu{f}.sel"),
                Expr::prim(
                    PrimOp::Bits,
                    vec![r(onehot, onehot_w)],
                    vec![f as u32, f as u32],
                )
                .expect("onehot bit"),
            );
            let en = b.comb(
                format!("l{lane}.fu{f}.en"),
                p2(PrimOp::And, r(is_f_raw, 1), r(valid, 1)),
            );
            // Gated operand register: holds its value when not selected.
            let hold = b.reg(format!("l{lane}.fu{f}.in"), 32, false);
            b.set_reg_next(
                hold,
                Expr::prim(
                    PrimOp::Mux,
                    vec![r(en, 1), r(opnd, 32), r(hold, 32)],
                    vec![],
                )
                .expect("mux"),
            );
            // Logic chains.
            let mut chain_ends: Vec<NodeId> = Vec::new();
            let mut prev_chain_end: Option<NodeId> = None;
            for cix in 0..params.fu_chains {
                let tweak = rng.gen::<u32>() as u64;
                let mut cur = b.comb(
                    format!("l{lane}.fu{f}.c{cix}.s0"),
                    trunc32(p2(PrimOp::Xor, r(hold, 32), u(tweak, 32))),
                );
                for s in 1..params.fu_depth {
                    let k = rng.gen::<u32>() as u64;
                    let expr = match rng.gen_range(0..6u32) {
                        0 => trunc32(p2(PrimOp::Add, r(cur, 32), u(k, 32))),
                        1 => trunc32(p2(PrimOp::Xor, r(cur, 32), u(k | 1, 32))),
                        2 => trunc32(p2(PrimOp::And, r(cur, 32), u(k | 0xff, 32))),
                        3 => {
                            // rotate via cat + slice (bit-split fodder)
                            let hi = Expr::prim(PrimOp::Bits, vec![r(cur, 32)], vec![31, 13])
                                .expect("bits");
                            let lo = Expr::prim(PrimOp::Bits, vec![r(cur, 32)], vec![12, 0])
                                .expect("bits");
                            p2(PrimOp::Cat, lo, hi)
                        }
                        4 => {
                            // cross-link with the previous chain
                            match prev_chain_end {
                                Some(pc) => trunc32(p2(PrimOp::Or, r(cur, 32), r(pc, 32))),
                                None => trunc32(p2(PrimOp::Or, r(cur, 32), u(k, 32))),
                            }
                        }
                        _ => trunc32(p2(
                            PrimOp::Add,
                            r(cur, 32),
                            Expr::prim(PrimOp::Bits, vec![r(cur, 32)], vec![15, 0]).expect("bits"),
                        )),
                    };
                    cur = b.comb(format!("l{lane}.fu{f}.c{cix}.s{s}"), expr);
                }
                prev_chain_end = Some(cur);
                chain_ends.push(cur);
            }
            // Fold chains into the FU output.
            let mut acc = r(chain_ends[0], 32);
            for &c in &chain_ends[1..] {
                acc = trunc32(p2(PrimOp::Xor, acc, r(c, 32)));
            }
            let out = b.comb(format!("l{lane}.fu{f}.out"), acc);
            fu_outs.push(out);
        }

        // Writeback bus: concatenate FU outputs; consumers slice lanes
        // back out (bit-level splitting fodder).
        let mut bus = r(fu_outs[0], 32);
        let mut bus_w = 32u32;
        for &f in &fu_outs[1..] {
            bus = p2(PrimOp::Cat, r(f, 32), bus);
            bus_w += 32;
        }
        let bus_node = b.comb(format!("l{lane}.bus"), bus);
        // Select the active FU's slice via a shifted index.
        let mut wb = Expr::prim(PrimOp::Bits, vec![r(bus_node, bus_w)], vec![31, 0]).expect("bits");
        for f in 1..params.fus_per_lane {
            let is_f = b.comb(
                format!("l{lane}.wb_sel{f}"),
                p2(PrimOp::Eq, r(fu_sel, sel_bits), u(f as u64, sel_bits)),
            );
            let slice = Expr::prim(
                PrimOp::Bits,
                vec![r(bus_node, bus_w)],
                vec![f as u32 * 32 + 31, f as u32 * 32],
            )
            .expect("bus slice");
            wb = Expr::prim(PrimOp::Mux, vec![r(is_f, 1), slice, wb], vec![]).expect("mux");
        }
        let wb_node = b.comb(format!("l{lane}.wb"), wb);

        // Register-file writeback.
        b.mem_write(
            regfile,
            Expr::prim(PrimOp::Bits, vec![r(op_r, 32)], vec![30, 26]).expect("bits"),
            r(wb_node, 32),
            r(valid, 1),
        );

        // Cache-like structure: tag + data memories with hit compare.
        let tag_mem = b.mem(format!("l{lane}.tags"), 64, 16);
        let data_mem = b.mem(format!("l{lane}.cache"), 64, 32);
        let index = b.comb(
            format!("l{lane}.index"),
            Expr::prim(PrimOp::Bits, vec![r(wb_node, 32)], vec![5, 0]).expect("bits"),
        );
        let tag_rd = b.mem_read(format!("l{lane}.tag_rd"), tag_mem, r(index, 6));
        let _data_rd = b.mem_read(format!("l{lane}.data_rd"), data_mem, r(index, 6));
        let hit = b.comb(
            format!("l{lane}.hit"),
            p2(
                PrimOp::Eq,
                r(tag_rd, 16),
                Expr::prim(PrimOp::Bits, vec![r(wb_node, 32)], vec![31, 16]).expect("bits"),
            ),
        );
        let miss = b.comb(
            format!("l{lane}.miss"),
            p2(
                PrimOp::And,
                Expr::prim(PrimOp::Not, vec![r(hit, 1)], vec![]).expect("not"),
                r(valid, 1),
            ),
        );
        b.mem_write(
            tag_mem,
            r(index, 6),
            Expr::prim(PrimOp::Bits, vec![r(wb_node, 32)], vec![31, 16]).expect("bits"),
            r(miss, 1),
        );
        b.mem_write(data_mem, r(index, 6), r(wb_node, 32), r(miss, 1));
        let miss_ctr = b.reg_with_reset(
            format!("l{lane}.miss_ctr"),
            32,
            false,
            reset,
            Value::zero(32),
        );
        b.set_reg_next(
            miss_ctr,
            Expr::prim(
                PrimOp::Mux,
                vec![
                    r(miss, 1),
                    trunc32(p2(PrimOp::Add, r(miss_ctr, 32), u(1, 32))),
                    r(miss_ctr, 32),
                ],
                vec![],
            )
            .expect("mux"),
        );

        // Retire register: captures writeback for the signature.
        let retire = b.reg_with_reset(format!("l{lane}.retire"), 32, false, reset, Value::zero(32));
        b.set_reg_next(
            retire,
            Expr::prim(
                PrimOp::Mux,
                vec![r(valid, 1), r(wb_node, 32), r(retire, 32)],
                vec![],
            )
            .expect("mux"),
        );
        lane_signatures.push(trunc32(p2(PrimOp::Xor, r(retire, 32), r(miss_ctr, 32))));
    }

    // Outputs: fold lane signatures so everything is live.
    let mut sig = lane_signatures[0].clone();
    for s in &lane_signatures[1..] {
        sig = trunc32(p2(PrimOp::Xor, sig, s.clone()));
    }
    b.output("signature", sig);
    b.output("cycles", r(cycle_ctr, 32));

    b.finish().expect("synthetic core is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_graph::interp::RefInterp;

    #[test]
    fn generator_hits_target_sizes() {
        for (name, target) in [
            ("Rocket", 6_000usize),
            ("BOOM", 12_000),
            ("XiangShan", 25_000),
        ] {
            let p = SynthParams::for_target(name, target);
            let g = synth_core(&p);
            g.validate().unwrap();
            let n = g.num_nodes();
            assert!(
                n as f64 > target as f64 * 0.5 && (n as f64) < target as f64 * 2.0,
                "{name}: {n} nodes for target {target}"
            );
        }
    }

    #[test]
    fn deterministic_for_same_params() {
        let p = SynthParams::for_target("Rocket", 3_000);
        let g1 = synth_core(&p);
        let g2 = synth_core(&p);
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
    }

    #[test]
    fn idle_core_is_mostly_inactive() {
        let p = SynthParams::for_target("Rocket", 3_000);
        let g = synth_core(&p);
        let mut sim = gsim_sim_compile(&g);
        // settle, then idle
        sim.run(3);
        sim.reset_counters();
        sim.run(50);
        let af = sim.counters().activity_factor(g.num_nodes());
        assert!(af < 0.10, "idle activity factor {af} too high");
        // drive ops: activity rises
        sim.poke_u64("op_in_0", 0x0000_1234).unwrap();
        sim.reset_counters();
        sim.run(2);
        assert!(sim.counters().node_evals > 0);
    }

    #[test]
    fn runs_identically_on_reference() {
        let p = SynthParams::for_target("stu", 1_500);
        let g = synth_core(&p);
        let mut reference = RefInterp::new(&g).unwrap();
        let mut sim = gsim_sim_compile(&g);
        for c in 0..30u64 {
            let op = c.wrapping_mul(0x1234_5678) ^ (c << 8);
            reference.poke_u64("op_in_0", op).unwrap();
            sim.poke_u64("op_in_0", op).unwrap();
            reference.step();
            sim.step();
            assert_eq!(
                sim.peek("signature"),
                reference.peek("signature").cloned(),
                "diverged at cycle {c}"
            );
        }
    }

    // gsim-sim is a dev-dependency only through the workspace; use a
    // tiny local shim so unit tests stay inside this crate.
    fn gsim_sim_compile(g: &Graph) -> gsim_sim::Simulator {
        gsim_sim::Simulator::compile(g, &gsim_sim::SimOptions::default()).unwrap()
    }
}
