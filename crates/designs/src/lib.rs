//! Design substrates for the GSIM evaluation.
//!
//! The paper evaluates on four RISC-V processors (Table I): stuCore
//! (a student-built in-order single-issue core), Rocket, BOOM, and
//! XiangShan. This crate provides their stand-ins:
//!
//! * [`stu_core`] — a real, working single-cycle RV32I-subset CPU
//!   written in FIRRTL text (exercising the whole front end). It fetches
//!   from an instruction memory, executes real machine code produced by
//!   `gsim-workloads`' assembler, and halts on `ecall`.
//! * [`synth`] — a parameterized generator of processor-shaped netlists
//!   used for the larger cores, reproducing the structural features the
//!   paper's optimizations exploit: one-hot decoders, gated
//!   functional-unit clusters (low activity factor), concatenation
//!   buses sliced by consumers (bit-splitting fodder), register files,
//!   cache-like tag/data memories, and a handful of reset fan-outs.
//! * [`paper_suite`] — the four designs at paper scale or scaled down
//!   by a factor for tractable benchmarking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stucore;
pub mod synth;

pub use stucore::{stu_core, stu_core_firrtl};
pub use synth::{synth_core, SynthParams};

use gsim_graph::{Expr, Graph, GraphBuilder, PrimOp};
use gsim_value::Value;

/// Paper Table I node counts, used as generator targets.
pub const PAPER_NODE_COUNTS: [(&str, usize); 4] = [
    ("stuCore", 9_933),
    ("Rocket", 234_807),
    ("BOOM", 571_038),
    ("XiangShan", 6_218_427),
];

/// One design of the evaluation suite.
#[derive(Debug)]
pub struct SuiteDesign {
    /// Paper name (`stuCore`, `Rocket`, `BOOM`, `XiangShan`).
    pub name: &'static str,
    /// The circuit.
    pub graph: Graph,
    /// Node count the paper reports for the real design.
    pub paper_nodes: usize,
}

/// Builds the four-design evaluation suite at `scale` (1.0 = paper-size
/// node counts; benchmarks default to a smaller scale so runs finish).
///
/// stuCore is always the real CPU; the other three are synthetic cores
/// sized to `paper_nodes × scale`.
pub fn paper_suite(scale: f64) -> Vec<SuiteDesign> {
    let mut out = Vec::with_capacity(4);
    out.push(SuiteDesign {
        name: "stuCore",
        graph: stu_core(),
        paper_nodes: PAPER_NODE_COUNTS[0].1,
    });
    for &(name, nodes) in &PAPER_NODE_COUNTS[1..] {
        let target = ((nodes as f64 * scale) as usize).max(2_000);
        let params = SynthParams::for_target(name, target);
        out.push(SuiteDesign {
            name,
            graph: synth_core(&params),
            paper_nodes: nodes,
        });
    }
    out
}

/// The standard reset-synchronizer pattern: the external reset is
/// carried through a two-stage register chain, and the *synchronized*
/// stage — itself a register — drives a counter's synchronous reset.
///
/// This is the canonical adversarial design for commit-phase reset
/// handling: the reset signal's state slot is overwritten during the
/// same commit that consults it, so any engine or emitter that reads
/// reset signals live mid-commit (instead of latching them pre-edge,
/// as [`gsim_graph::interp::RefInterp`] does) applies reset one cycle
/// early. Differential tests run it against every engine and the AoT
/// backend.
///
/// Ports: input `rst` (1 bit); outputs `out` (the 8-bit counter) and
/// `sync_out` (the synchronized reset, for observing the chain).
pub fn reset_synchronizer() -> Graph {
    let mut b = GraphBuilder::new("sync_reset");
    let rst = b.input("rst", 1, false);
    let s0 = b.reg("sync0", 1, false);
    b.set_reg_next(s0, Expr::reference(rst, 1, false));
    let s1 = b.reg("sync1", 1, false);
    b.set_reg_next(s1, Expr::reference(s0, 1, false));
    let c = b.reg_with_reset("count", 8, false, s1, Value::zero(8));
    let next = Expr::truncate(
        Expr::prim(
            PrimOp::Add,
            vec![Expr::reference(c, 8, false), Expr::const_u64(1, 8)],
            vec![],
        )
        .expect("add"),
        8,
    );
    b.set_reg_next(c, next);
    b.output("out", Expr::reference(c, 8, false));
    b.output("sync_out", Expr::reference(s1, 1, false));
    b.finish().expect("reset_synchronizer is a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_scales_roughly_to_target() {
        let suite = paper_suite(0.01);
        assert_eq!(suite.len(), 4);
        for d in &suite[1..] {
            let target = (d.paper_nodes as f64 * 0.01).max(2000.0);
            let actual = d.graph.num_nodes() as f64;
            assert!(
                actual > target * 0.5 && actual < target * 2.5,
                "{}: {actual} nodes vs target {target}",
                d.name
            );
        }
    }
}
