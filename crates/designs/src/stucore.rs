//! stuCore: a single-cycle RV32I-subset processor in FIRRTL.
//!
//! The paper's smallest evaluation design is "stuCore ... designed by
//! undergraduate student" — an in-order single-issue core. This is a
//! faithful stand-in: a real CPU that fetches from `imem`, executes the
//! RV32I base subset below in one cycle each, accesses `dmem`, and
//! raises `halt` on `ecall`:
//!
//! `lui auipc jal jalr beq bne blt bge bltu bgeu lw sw addi slti sltiu
//! xori ori andi slli srli srai add sub sll slt sltu xor srl sra or and
//! ecall`
//!
//! Interface:
//!
//! * `halt` — 1 after `ecall` (sticky; the core stops writing state),
//! * `pc_out` — current program counter,
//! * `result` — live view of register `x10`/`a0` (the RISC-V return
//!   value register),
//! * memories `imem` (4096×32, word-addressed via `pc[13:2]`), `dmem`
//!   (4096×32), `regfile` (32×32) — loadable/peekable through the
//!   simulator's memory API.

use gsim_graph::Graph;

/// The FIRRTL source of stuCore.
pub fn stu_core_firrtl() -> String {
    STU_CORE_FIRRTL.to_string()
}

/// Compiles stuCore to a circuit graph.
///
/// # Panics
///
/// Panics only if the embedded FIRRTL fails to compile (a build bug —
/// covered by tests).
pub fn stu_core() -> Graph {
    gsim_firrtl::compile(STU_CORE_FIRRTL).expect("stuCore FIRRTL compiles")
}

const STU_CORE_FIRRTL: &str = r#"
circuit StuCore :
  module StuCore :
    input clock : Clock
    input reset : UInt<1>
    output halt : UInt<1>
    output pc_out : UInt<32>
    output result : UInt<32>

    reg pc : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))
    reg halted : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))

    mem imem :
      data-type => UInt<32>
      depth => 4096
      read-latency => 0
      write-latency => 1
      reader => r
    imem.r.addr <= bits(pc, 13, 2)
    imem.r.en <= UInt<1>(1)
    node inst = imem.r.data

    node opcode = bits(inst, 6, 0)
    node rd = bits(inst, 11, 7)
    node funct3 = bits(inst, 14, 12)
    node rs1 = bits(inst, 19, 15)
    node rs2 = bits(inst, 24, 20)
    node funct7 = bits(inst, 31, 25)

    node is_lui    = eq(opcode, UInt<7>("h37"))
    node is_auipc  = eq(opcode, UInt<7>("h17"))
    node is_jal    = eq(opcode, UInt<7>("h6f"))
    node is_jalr   = eq(opcode, UInt<7>("h67"))
    node is_branch = eq(opcode, UInt<7>("h63"))
    node is_load   = eq(opcode, UInt<7>("h03"))
    node is_store  = eq(opcode, UInt<7>("h23"))
    node is_opimm  = eq(opcode, UInt<7>("h13"))
    node is_op     = eq(opcode, UInt<7>("h33"))
    node is_system = eq(opcode, UInt<7>("h73"))

    node immI = asUInt(pad(asSInt(bits(inst, 31, 20)), 32))
    node immS = asUInt(pad(asSInt(cat(bits(inst, 31, 25), bits(inst, 11, 7))), 32))
    node immB = asUInt(pad(asSInt(cat(bits(inst, 31, 31), cat(bits(inst, 7, 7), cat(bits(inst, 30, 25), cat(bits(inst, 11, 8), UInt<1>(0)))))), 32))
    node immU = cat(bits(inst, 31, 12), UInt<12>(0))
    node immJ = asUInt(pad(asSInt(cat(bits(inst, 31, 31), cat(bits(inst, 19, 12), cat(bits(inst, 20, 20), cat(bits(inst, 30, 21), UInt<1>(0)))))), 32))

    mem regfile :
      data-type => UInt<32>
      depth => 32
      read-latency => 0
      write-latency => 1
      reader => ra
      reader => rb
      reader => dbg
      writer => w
    regfile.ra.addr <= rs1
    regfile.ra.en <= UInt<1>(1)
    regfile.rb.addr <= rs2
    regfile.rb.en <= UInt<1>(1)
    regfile.dbg.addr <= UInt<5>(10)
    regfile.dbg.en <= UInt<1>(1)
    node rv1 = regfile.ra.data
    node rv2 = regfile.rb.data

    node alu_b = mux(is_op, rv2, immI)
    node shamt = bits(alu_b, 4, 0)
    node sub_en = and(bits(funct7, 5, 5), is_op)

    node sum_add = bits(add(rv1, alu_b), 31, 0)
    node sum_sub = bits(sub(rv1, alu_b), 31, 0)
    node alu_sum = mux(sub_en, sum_sub, sum_add)
    node alu_sll = bits(dshl(rv1, shamt), 31, 0)
    node alu_slt = pad(lt(asSInt(rv1), asSInt(alu_b)), 32)
    node alu_sltu = pad(lt(rv1, alu_b), 32)
    node alu_xor = xor(rv1, alu_b)
    node sra_en = bits(funct7, 5, 5)
    node alu_srl = dshr(rv1, shamt)
    node alu_sra = asUInt(dshr(asSInt(rv1), shamt))
    node alu_sr = mux(sra_en, alu_sra, alu_srl)
    node alu_or = or(rv1, alu_b)
    node alu_and = and(rv1, alu_b)

    wire alu_out : UInt<32>
    alu_out <= alu_sum
    when eq(funct3, UInt<3>(1)) :
      alu_out <= alu_sll
    else when eq(funct3, UInt<3>(2)) :
      alu_out <= alu_slt
    else when eq(funct3, UInt<3>(3)) :
      alu_out <= alu_sltu
    else when eq(funct3, UInt<3>(4)) :
      alu_out <= alu_xor
    else when eq(funct3, UInt<3>(5)) :
      alu_out <= alu_sr
    else when eq(funct3, UInt<3>(6)) :
      alu_out <= alu_or
    else when eq(funct3, UInt<3>(7)) :
      alu_out <= alu_and

    node cmp_eq = eq(rv1, rv2)
    node cmp_lt = lt(asSInt(rv1), asSInt(rv2))
    node cmp_ltu = lt(rv1, rv2)
    wire branch_taken : UInt<1>
    branch_taken <= UInt<1>(0)
    when eq(funct3, UInt<3>(0)) :
      branch_taken <= cmp_eq
    else when eq(funct3, UInt<3>(1)) :
      branch_taken <= not(cmp_eq)
    else when eq(funct3, UInt<3>(4)) :
      branch_taken <= cmp_lt
    else when eq(funct3, UInt<3>(5)) :
      branch_taken <= not(cmp_lt)
    else when eq(funct3, UInt<3>(6)) :
      branch_taken <= cmp_ltu
    else when eq(funct3, UInt<3>(7)) :
      branch_taken <= not(cmp_ltu)

    node pc_plus4 = bits(add(pc, UInt<32>(4)), 31, 0)
    node pc_branch = bits(add(pc, immB), 31, 0)
    node pc_jal = bits(add(pc, immJ), 31, 0)
    node jalr_t = bits(add(rv1, immI), 31, 0)
    node pc_jalr = and(jalr_t, UInt<32>("hfffffffe"))

    wire pc_next : UInt<32>
    pc_next <= pc_plus4
    when and(is_branch, branch_taken) :
      pc_next <= pc_branch
    when is_jal :
      pc_next <= pc_jal
    when is_jalr :
      pc_next <= pc_jalr
    when halted :
      pc_next <= pc
    pc <= pc_next

    node mem_addr = bits(add(rv1, mux(is_store, immS, immI)), 31, 0)
    mem dmem :
      data-type => UInt<32>
      depth => 4096
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    dmem.r.addr <= bits(mem_addr, 13, 2)
    dmem.r.en <= UInt<1>(1)
    node load_data = dmem.r.data
    dmem.w.addr <= bits(mem_addr, 13, 2)
    dmem.w.data <= rv2
    dmem.w.en <= and(is_store, not(halted))

    wire wb_data : UInt<32>
    wb_data <= alu_out
    when is_lui :
      wb_data <= immU
    when is_auipc :
      wb_data <= bits(add(pc, immU), 31, 0)
    when is_load :
      wb_data <= load_data
    when or(is_jal, is_jalr) :
      wb_data <= pc_plus4

    node wb_en_base = or(or(or(is_lui, is_auipc), or(is_jal, is_jalr)), or(is_load, or(is_opimm, is_op)))
    node wb_en = and(and(wb_en_base, neq(rd, UInt<5>(0))), not(halted))
    regfile.w.addr <= rd
    regfile.w.data <= wb_data
    regfile.w.en <= wb_en

    node is_ecall = and(is_system, eq(bits(inst, 31, 7), UInt<25>(0)))
    halted <= or(halted, and(is_ecall, not(reset)))

    halt <= halted
    pc_out <= pc
    result <= regfile.dbg.data
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_graph::interp::RefInterp;

    #[test]
    fn stu_core_compiles_and_validates() {
        let g = stu_core();
        g.validate().unwrap();
        assert!(g.num_nodes() > 50);
        assert!(g.mem_by_name("imem").is_some());
        assert!(g.mem_by_name("dmem").is_some());
        assert!(g.mem_by_name("regfile").is_some());
    }

    /// Hand-assembled smoke program:
    ///   addi x1, x0, 5
    ///   addi x2, x0, 7
    ///   add  x10, x1, x2
    ///   ecall
    #[test]
    fn executes_hand_assembled_add() {
        let g = stu_core();
        let mut sim = RefInterp::new(&g).unwrap();
        let program = [
            0x0050_0093u64, // addi x1, x0, 5
            0x0070_0113,    // addi x2, x0, 7
            0x0020_8533,    // add x10, x1, x2
            0x0000_0073,    // ecall
        ];
        sim.load_mem("imem", &program).unwrap();
        for _ in 0..20 {
            sim.step();
            if sim.peek_u64("halt") == Some(1) {
                break;
            }
        }
        assert_eq!(sim.peek_u64("halt"), Some(1), "core must halt on ecall");
        assert_eq!(sim.peek_u64("result"), Some(12));
        assert_eq!(
            sim.mem_word_by_name("regfile", 10).unwrap().to_u64(),
            Some(12)
        );
    }

    /// Store then load back through dmem:
    ///   addi x1, x0, 42 ; addi x2, x0, 64 ; sw x1, 0(x2)
    ///   lw x10, 0(x2)   ; ecall
    #[test]
    fn memory_store_load_roundtrip() {
        let g = stu_core();
        let mut sim = RefInterp::new(&g).unwrap();
        let program = [
            0x02a0_0093u64, // addi x1, x0, 42
            0x0400_0113,    // addi x2, x0, 64
            0x0011_2023,    // sw x1, 0(x2)
            0x0001_2503,    // lw x10, 0(x2)
            0x0000_0073,    // ecall
        ];
        sim.load_mem("imem", &program).unwrap();
        for _ in 0..20 {
            sim.step();
            if sim.peek_u64("halt") == Some(1) {
                break;
            }
        }
        assert_eq!(sim.peek_u64("result"), Some(42));
        assert_eq!(sim.mem_word_by_name("dmem", 16).unwrap().to_u64(), Some(42));
    }

    /// Branch loop: count down from 3.
    ///   addi x1, x0, 3
    /// loop:
    ///   addi x1, x1, -1
    ///   bne x1, x0, loop
    ///   addi x10, x0, 99
    ///   ecall
    #[test]
    fn branch_loop_terminates() {
        let g = stu_core();
        let mut sim = RefInterp::new(&g).unwrap();
        let program = [
            0x0030_0093u64, // addi x1, x0, 3
            0xfff0_8093,    // addi x1, x1, -1
            0xfe00_9ee3,    // bne x1, x0, -4
            0x0630_0513,    // addi x10, x0, 99
            0x0000_0073,    // ecall
        ];
        sim.load_mem("imem", &program).unwrap();
        for _ in 0..40 {
            sim.step();
            if sim.peek_u64("halt") == Some(1) {
                break;
            }
        }
        assert_eq!(sim.peek_u64("halt"), Some(1));
        assert_eq!(sim.peek_u64("result"), Some(99));
    }
}
