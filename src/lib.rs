//! Root facade; see the `gsim` crate for the public API.
