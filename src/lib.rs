//! Workspace facade: re-exports the [`gsim`] public API so the
//! top-level `tests/` and `examples/` exercise exactly what downstream
//! users see.
//!
//! The real implementation lives in the `crates/` workspace members;
//! start at [`gsim`] (the `Compiler`/`Preset` builder) and
//! `gsim_firrtl::compile` for the front end.

#![forbid(unsafe_code)]

pub use gsim::*;
