//! Exploration equivalence: branches fanned out by the snapshot-fork
//! [`gsim::Explorer`] must be *bit-identical* to running the same
//! perturbed scenario sequentially — peeks against the independent
//! `RefInterp` golden model, peeks *and* semantic counters against a
//! cold session of the same backend — on randomly generated netlists
//! (interp and jit pools) and on the compiled AoT sibling-process
//! pool, including a chaos case where a pool child is killed
//! mid-branch and the branch is retried on a recovered session.

use gsim::{
    Compiler, EngineChoice, ExploreOptions, Explorer, GsimError, Preset, Scenario, Session,
};
use gsim_graph::interp::RefInterp;
use gsim_graph::{Expr, Graph, GraphBuilder, NodeId, PrimOp};
use gsim_value::Value;
use proptest::prelude::*;

// ------------------------------------------------ random netlists

/// Plan for one random node (condensed from the sim crate's
/// differential suite: enough op diversity to exercise activation
/// tracking, multi-word values, and registers).
#[derive(Debug, Clone)]
enum NodePlan {
    Unary(u8),
    Binary(u8),
    MuxOp,
    Register { with_reset: bool },
}

#[derive(Debug, Clone)]
struct CircuitPlan {
    widths: Vec<u8>,
    nodes: Vec<(NodePlan, u16, u16, u16)>,
    n_inputs: u8,
    frames: Vec<u64>,
}

fn plan_strategy() -> impl Strategy<Value = CircuitPlan> {
    (
        proptest::collection::vec(1u8..48, 2..5),
        proptest::collection::vec(
            (
                prop_oneof![
                    (0u8..5).prop_map(NodePlan::Unary),
                    (0u8..8).prop_map(NodePlan::Binary),
                    Just(NodePlan::MuxOp),
                    any::<bool>().prop_map(|r| NodePlan::Register { with_reset: r }),
                ],
                any::<u16>(),
                any::<u16>(),
                any::<u16>(),
            ),
            3..16,
        ),
        1u8..4,
        proptest::collection::vec(any::<u64>(), 6..16),
    )
        .prop_map(|(widths, nodes, n_inputs, frames)| CircuitPlan {
            widths,
            nodes,
            n_inputs,
            frames,
        })
}

/// Deterministically builds a valid DAG from a plan (operands always
/// reference earlier nodes).
fn build_circuit(plan: &CircuitPlan) -> Graph {
    let mut b = GraphBuilder::new("Rand");
    let rst = b.input("rst", 1, false);
    let mut pool: Vec<(NodeId, u32)> = vec![(rst, 1)];
    for i in 0..plan.n_inputs {
        let w = plan.widths[i as usize % plan.widths.len()] as u32;
        let id = b.input(format!("in{i}"), w, false);
        pool.push((id, w));
    }
    for (i, (node_plan, s1, s2, s3)) in plan.nodes.iter().enumerate() {
        let pick = |seed: u16, pool: &[(NodeId, u32)]| {
            let (id, w) = pool[seed as usize % pool.len()];
            Expr::reference(id, w, false)
        };
        let expr = match node_plan {
            NodePlan::Unary(op) => {
                let a = pick(*s1, &pool);
                let op = [
                    PrimOp::Not,
                    PrimOp::Andr,
                    PrimOp::Orr,
                    PrimOp::Xorr,
                    PrimOp::Neg,
                ][*op as usize % 5];
                let e = Expr::prim(op, vec![a], vec![]).expect("unary");
                if e.signed {
                    Expr::prim(PrimOp::AsUInt, vec![e], vec![]).expect("cast")
                } else {
                    e
                }
            }
            NodePlan::Binary(op) => {
                let a = pick(*s1, &pool);
                let c = pick(*s2, &pool);
                let op = [
                    PrimOp::Add,
                    PrimOp::Sub,
                    PrimOp::Mul,
                    PrimOp::And,
                    PrimOp::Or,
                    PrimOp::Xor,
                    PrimOp::Cat,
                    PrimOp::Eq,
                ][*op as usize % 8];
                let e = Expr::prim(op, vec![a, c], vec![]).expect("binary");
                if e.signed {
                    Expr::prim(PrimOp::AsUInt, vec![e], vec![]).expect("cast")
                } else {
                    e
                }
            }
            NodePlan::MuxOp => {
                let sel_src = pick(*s1, &pool);
                let sel = if sel_src.width == 1 {
                    sel_src
                } else {
                    Expr::prim(PrimOp::Orr, vec![sel_src], vec![]).expect("orr")
                };
                let t = pick(*s2, &pool);
                let f = pick(*s3, &pool);
                Expr::prim(PrimOp::Mux, vec![sel, t, f], vec![]).expect("mux")
            }
            NodePlan::Register { with_reset } => {
                let next_src = pick(*s1, &pool);
                let w = next_src.width;
                let reg = if *with_reset {
                    b.reg_with_reset(
                        format!("r{i}"),
                        w,
                        false,
                        rst,
                        Value::from_u64(*s2 as u64, w),
                    )
                } else {
                    b.reg(format!("r{i}"), w, false)
                };
                b.set_reg_next(reg, next_src);
                pool.push((reg, w));
                continue;
            }
        };
        let w = expr.width;
        let id = b.comb(format!("n{i}"), expr);
        pool.push((id, w));
    }
    for o in 0..2usize {
        let (id, w) = pool[pool.len() - 1 - (o % pool.len().min(3))];
        b.output(format!("out{o}"), Expr::reference(id, w, false));
    }
    b.finish().expect("plan builds a valid graph")
}

/// The plan's per-cycle stimulus as a [`Scenario`]: rst pulses plus a
/// varied word per data input, every cycle — dense pokes give
/// `perturb` something to vary on every frame.
fn plan_scenario(plan: &CircuitPlan, graph: &Graph) -> Scenario {
    let inputs: Vec<String> = graph
        .inputs()
        .iter()
        .map(|&i| graph.node(i).name.clone())
        .collect();
    let mut sc = Scenario::new();
    for (cycle, &word) in plan.frames.iter().enumerate() {
        let frame: Vec<(String, u64)> = inputs
            .iter()
            .enumerate()
            .map(|(k, name)| {
                let v = if name == "rst" {
                    u64::from(word % 5 == 3)
                } else {
                    word.rotate_left(k as u32 * 13) ^ cycle as u64
                };
                (name.clone(), v)
            })
            .collect();
        sc.frames.push(frame);
    }
    sc
}

// ------------------------------------------------ replay oracles

/// Branch `seed` replayed on the `RefInterp` golden model: returns
/// each named output's value after `warm` then the perturbed base.
fn refinterp_replay(
    graph: &Graph,
    warm: &Scenario,
    base: &Scenario,
    seed: u64,
    outputs: &[String],
) -> Vec<(String, Value)> {
    let mut r = RefInterp::new(graph).expect("reference builds");
    for sc in [warm.clone(), base.perturb(seed)] {
        for (mem, image) in &sc.loads {
            r.load_mem(mem, image).expect("reference load");
        }
        for frame in &sc.frames {
            for (name, v) in frame {
                // The reference pokes mask to width like the engines.
                r.poke_u64(name, *v).expect("reference poke");
            }
            r.step();
        }
    }
    outputs
        .iter()
        .map(|n| (n.clone(), r.peek(n).expect("reference peek").clone()))
        .collect()
}

/// Branch `seed` replayed sequentially on a cold session of the same
/// backend: peeks *and* cumulative counters, the fork-invariance
/// oracle.
fn sequential_replay(
    mut session: Box<dyn Session>,
    warm: &Scenario,
    base: &Scenario,
    seed: u64,
    outputs: &[String],
) -> (Vec<(String, Value)>, gsim::Counters) {
    session.run_scenario(warm).expect("sequential warmup");
    session
        .run_scenario(&base.perturb(seed))
        .expect("sequential branch");
    let peeks = outputs
        .iter()
        .map(|n| (n.clone(), session.peek(n).expect("sequential peek")))
        .collect();
    (peeks, session.counters().expect("sequential counters"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Parallel perturbed branches on the in-process pools (interp
    // fork, jit fork) are bit-identical — peeks and full counters —
    // to a sequential replay, and match the golden model.
    #[test]
    fn explored_branches_match_sequential_replay(plan in plan_strategy()) {
        let graph = build_circuit(&plan);
        let outputs: Vec<String> = graph
            .outputs()
            .iter()
            .map(|&o| graph.node(o).name.clone())
            .collect();
        let sc = plan_scenario(&plan, &graph);
        let warm = Scenario {
            loads: Vec::new(),
            frames: sc.frames[..sc.frames.len() / 2].to_vec(),
        };
        let base = Scenario {
            loads: Vec::new(),
            frames: sc.frames[sc.frames.len() / 2..].to_vec(),
        };
        let branches = 5usize;
        for engine in [EngineChoice::Essential, EngineChoice::Threaded] {
            let mut core = Compiler::new(&graph)
                .preset(Preset::Gsim)
                .build_session(engine)
                .expect("core session");
            core.run_scenario(&warm).expect("warmup");
            let report = Explorer::new(core.as_mut())
                .options(ExploreOptions {
                    workers: 3,
                    watch: outputs.clone(),
                    ..ExploreOptions::default()
                })
                .run(&base, branches, None)
                .expect("exploration");
            prop_assert_eq!(report.branches.len(), branches);
            for b in &report.branches {
                prop_assert_eq!(b.cycle, warm.cycles() + base.cycles());
                let golden = refinterp_replay(&graph, &warm, &base, b.index as u64, &outputs);
                prop_assert_eq!(&b.peeks, &golden, "branch {} vs RefInterp ({engine:?})", b.index);
                let replay = Compiler::new(&graph)
                    .preset(Preset::Gsim)
                    .build_session(engine)
                    .expect("replay session");
                let (peeks, counters) =
                    sequential_replay(replay, &warm, &base, b.index as u64, &outputs);
                prop_assert_eq!(&b.peeks, &peeks, "branch {} peeks ({engine:?})", b.index);
                prop_assert_eq!(
                    b.counters, counters,
                    "branch {} counters ({engine:?})", b.index
                );
            }
        }
    }
}

// ------------------------------------------------ the AoT pool

const EXPLORE_CORE: &str = r#"
circuit ExploreCore :
  module ExploreCore :
    input clock : Clock
    input reset : UInt<1>
    input inc : UInt<4>
    output out : UInt<16>
    output lo : UInt<4>
    reg acc : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    acc <= tail(add(acc, inc), 1)
    out <= acc
    lo <= bits(acc, 3, 0)
"#;

fn aot_scenarios() -> (Scenario, Scenario) {
    let warm = Scenario::new()
        .frame(&[("reset", 1), ("inc", 0)])
        .frame(&[("reset", 0), ("inc", 1)])
        .repeat(3);
    let mut base = Scenario::new();
    for c in 0..24u64 {
        base.frames
            .push(vec![("inc".to_string(), (c * 7 + 3) & 0xf)]);
    }
    (warm, base)
}

/// The AoT pool — sibling processes forked from one compiled binary —
/// stays bit-identical to the golden model and to a sequential replay
/// on a cold process of the same binary.
#[test]
fn aot_pool_matches_sequential_replay() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available on this host");
        return;
    }
    let graph = gsim_firrtl::compile(EXPLORE_CORE).unwrap();
    let outputs = vec!["out".to_string(), "lo".to_string()];
    let (warm, base) = aot_scenarios();
    let (aot_sim, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .expect("aot compiles");
    let mut core = aot_sim.session().expect("core session");
    core.run_scenario(&warm).expect("warmup");
    let report = Explorer::new(&mut core)
        .options(ExploreOptions {
            workers: 3,
            watch: outputs.clone(),
            ..ExploreOptions::default()
        })
        .run(&base, 6, None)
        .expect("exploration");
    assert_eq!(report.branches.len(), 6);
    assert!(report.forks > 0, "the compiled backend must fork its pool");
    for b in &report.branches {
        let golden = refinterp_replay(&graph, &warm, &base, b.index as u64, &outputs);
        assert_eq!(b.peeks, golden, "branch {} vs RefInterp", b.index);
        let replay = Box::new(aot_sim.session().expect("replay session")) as Box<dyn Session>;
        let (peeks, counters) = sequential_replay(replay, &warm, &base, b.index as u64, &outputs);
        assert_eq!(b.peeks, peeks, "branch {} peeks", b.index);
        assert_eq!(b.counters, counters, "branch {} counters", b.index);
    }
}

// ------------------------------------------------ chaos

/// Forces the explorer onto its recovery factory by refusing to fork.
struct NoFork(Box<dyn Session + Send>);

impl Session for NoFork {
    fn backend(&self) -> &'static str {
        "nofork"
    }
    fn cycle(&self) -> u64 {
        self.0.cycle()
    }
    fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
        self.0.poke(name, v)
    }
    fn peek(&mut self, name: &str) -> Result<Value, GsimError> {
        self.0.peek(name)
    }
    fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError> {
        self.0.load_mem(name, image)
    }
    fn step(&mut self, n: u64) -> Result<(), GsimError> {
        self.0.step(n)
    }
    fn counters(&mut self) -> Result<gsim::Counters, GsimError> {
        self.0.counters()
    }
    fn snapshot(&mut self) -> Result<gsim::SnapshotId, GsimError> {
        self.0.snapshot()
    }
    fn restore(&mut self, id: gsim::SnapshotId) -> Result<(), GsimError> {
        self.0.restore(id)
    }
    fn inputs(&mut self) -> Result<Vec<gsim::SignalInfo>, GsimError> {
        self.0.inputs()
    }
    fn signals(&mut self) -> Result<Vec<gsim::SignalInfo>, GsimError> {
        self.0.signals()
    }
    fn memories(&mut self) -> Result<Vec<gsim::MemoryInfo>, GsimError> {
        self.0.memories()
    }
}

/// Chaos: the first pool child carries an injected fault that kills
/// its process mid-branch. The explorer must retry the branch on a
/// fresh recovered session and every branch must still end
/// bit-identical to the golden model.
#[test]
fn killed_pool_child_is_retried_and_stays_bit_identical() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available on this host");
        return;
    }
    let graph = gsim_firrtl::compile(EXPLORE_CORE).unwrap();
    let outputs = vec!["out".to_string(), "lo".to_string()];
    let (warm, base) = aot_scenarios();
    let (aot_sim, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .expect("aot compiles");
    let mut core = NoFork(Box::new(aot_sim.session().expect("core session")));
    core.run_scenario(&warm).expect("warmup");

    // First recovered session self-destructs mid-branch (the fault
    // plan kills the child process after `warm + 10` cycles); every
    // later one is healthy. The `Mutex` makes the captured `AotSim`
    // shareable across the explorer's worker threads.
    let kill_at = warm.cycles() + 10;
    let armed = AtomicBool::new(true);
    let aot_sim = Mutex::new(aot_sim);
    let warm_for_factory = warm.clone();
    let recover = move || -> Result<Box<dyn Session + Send>, GsimError> {
        let plan = if armed.swap(false, Ordering::SeqCst) {
            gsim::FaultPlan {
                kill_child_at_cycle: Some(kill_at),
                ..gsim::FaultPlan::default()
            }
        } else {
            gsim::FaultPlan::default()
        };
        let mut s = aot_sim
            .lock()
            .expect("factory lock")
            .session_with(None, &plan)
            .map_err(|e| GsimError::Backend(e.to_string()))?;
        s.run_scenario(&warm_for_factory)?;
        Ok(Box::new(s) as Box<dyn Session + Send>)
    };

    let report = Explorer::new(&mut core)
        .with_recovery(&recover)
        .options(ExploreOptions {
            workers: 2,
            watch: outputs.clone(),
            ..ExploreOptions::default()
        })
        .run(&base, 4, None)
        .expect("exploration survives the kill");
    assert_eq!(report.branches.len(), 4);
    assert_eq!(report.forks, 0, "NoFork must force the recovery pool");
    assert!(
        report.total_retries() >= 1,
        "the killed child's branch must have been retried"
    );
    for b in &report.branches {
        let golden = refinterp_replay(&graph, &warm, &base, b.index as u64, &outputs);
        assert_eq!(b.peeks, golden, "branch {} vs RefInterp", b.index);
    }
}
