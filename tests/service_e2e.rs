//! The simulation service, end to end: a real [`gsim::Server`] on a
//! loopback socket, driven by [`gsim::ClientSession`]s through the
//! same differential harness as the in-process backends. Remote
//! sessions are `Session` implementors like any other, so
//! bit-identical-to-`RefInterp` is asserted by the exact same code
//! path — per cycle, per named output — at 16 concurrent clients.

mod common;

use common::{assert_sessions_match_reference, stim_word};
use gsim::{ClientSession, Endpoint, Server, ServerConfig, Session};
use gsim_graph::Graph;

const DESIGN: &str = r#"
circuit SvcDut :
  module SvcDut :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<16>
    input b : UInt<16>
    output sum : UInt<17>
    output acc : UInt<16>
    output hi : UInt<16>
    reg r : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    reg h : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    r <= tail(add(r, xor(a, b)), 1)
    h <= mux(gt(a, b), a, b)
    sum <= add(a, b)
    acc <= r
    hi <= h
"#;

fn dut_graph() -> Graph {
    gsim_firrtl::compile(DESIGN).expect("compiles")
}

/// Per-lane stimulus frames: every client gets its own deterministic
/// sequence (different `lane`), including sporadic mid-run resets.
fn frames_for(lane: u64, cycles: u64) -> Vec<Vec<(String, u64)>> {
    (0..cycles)
        .map(|c| {
            vec![
                ("reset".to_string(), u64::from((c + lane) % 11 == 7)),
                ("a".to_string(), stim_word(c, lane) & 0xffff),
                ("b".to_string(), stim_word(c, lane + 1000) & 0xffff),
            ]
        })
        .collect()
}

fn start_server(tag: &str) -> (Server, std::path::PathBuf) {
    let cache_dir = std::env::temp_dir().join(format!("gsim_svc_e2e_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::start(ServerConfig::new(
        Endpoint::Tcp("127.0.0.1:0".into()),
        &cache_dir,
    ))
    .expect("server starts");
    (server, cache_dir)
}

/// Opens a remote session and wraps it in the harness's matrix shape.
fn remote_session(
    ep: &Endpoint,
    backend: &str,
    tag: String,
) -> Vec<(String, Box<dyn Session + 'static>)> {
    let mut c = ClientSession::connect(ep).expect("connect");
    c.open_design(DESIGN, backend).expect("open design");
    vec![(tag, Box::new(c) as Box<dyn Session>)]
}

/// The tentpole acceptance check: 16 concurrent AoT-backed remote
/// sessions, each bit-identical to its own `RefInterp` over a
/// per-client stimulus, with exactly one `rustc` across all of them.
#[test]
fn sixteen_concurrent_remote_sessions_match_reference() {
    if !gsim_codegen::rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let clients: u64 = 16;
    let cycles = 64;
    let graph = dut_graph();
    let (mut server, cache_dir) = start_server("concurrent");
    let ep = server.endpoint().clone();

    std::thread::scope(|scope| {
        for lane in 0..clients {
            let (graph, ep) = (&graph, &ep);
            scope.spawn(move || {
                let mut sessions = remote_session(ep, "aot", format!("client{lane}"));
                assert_sessions_match_reference(
                    "service_e2e",
                    graph,
                    &mut sessions,
                    cycles,
                    &[],
                    &frames_for(lane, cycles),
                );
            });
        }
    });

    let stats = server.stats();
    assert_eq!(
        stats.cache.compiles, 1,
        "one rustc for {clients} concurrent sessions of one design"
    );
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        clients,
        "every open counted against the cache"
    );
    assert_eq!(stats.sessions, clients, "every connection registered");
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The interpreter-backed service path through the same harness: no
/// rustc involved, same bit-identical contract.
#[test]
fn remote_interp_session_matches_reference() {
    let cycles = 64;
    let graph = dut_graph();
    let (mut server, cache_dir) = start_server("interp");
    let ep = server.endpoint().clone();

    let mut sessions = remote_session(&ep, "interp", "remote-interp".into());
    assert_sessions_match_reference(
        "service_e2e/interp",
        &graph,
        &mut sessions,
        cycles,
        &[],
        &frames_for(3, cycles),
    );
    assert_eq!(server.stats().cache.compiles, 0, "interp never compiles");
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The threaded-code service path: `design … jit` serves a session
/// with AoT-class dispatch but zero rustc involvement (cold start is
/// the lowering pass, not a compile), through the same bit-identical
/// contract as every other backend.
#[test]
fn remote_jit_session_matches_reference() {
    let cycles = 64;
    let graph = dut_graph();
    let (mut server, cache_dir) = start_server("jit");
    let ep = server.endpoint().clone();

    let mut sessions = remote_session(&ep, "jit", "remote-jit".into());
    assert_sessions_match_reference(
        "service_e2e/jit",
        &graph,
        &mut sessions,
        cycles,
        &[],
        &frames_for(5, cycles),
    );
    assert_eq!(server.stats().cache.compiles, 0, "jit never invokes rustc");
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Warm reuse across session *generations*: a design opened, closed,
/// and reopened hits the published artifact (the cache outlives the
/// sessions that populated it).
#[test]
fn reopened_design_hits_the_cache() {
    if !gsim_codegen::rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let (mut server, cache_dir) = start_server("reopen");
    let ep = server.endpoint().clone();

    let mut first = ClientSession::connect(&ep).expect("connect");
    let info = first.open_design(DESIGN, "aot").expect("open");
    assert_eq!(info.status, "miss", "first open compiles");
    first.step(8).expect("step");
    drop(first);

    let mut second = ClientSession::connect(&ep).expect("connect");
    let info2 = second.open_design(DESIGN, "aot").expect("open");
    assert_eq!(info2.status, "hit", "reopen skips rustc");
    assert_eq!(info.key, info2.key, "same design, same artifact key");
    second.step(8).expect("step");
    drop(second);

    let stats = server.stats();
    assert_eq!(stats.cache.compiles, 1);
    assert_eq!(stats.cache.hits, 1);
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Protocol-level error taxonomy across the wire: unknown signals and
/// bad designs come back as typed `GsimError`s, and the session
/// survives non-fatal errors.
#[test]
fn wire_errors_decode_to_typed_variants() {
    let (mut server, cache_dir) = start_server("errors");
    let ep = server.endpoint().clone();

    // A broken design decodes as a parse error.
    let mut c = ClientSession::connect(&ep).expect("connect");
    match c.open_design("circuit Broken :\n  nonsense\n", "interp") {
        Err(gsim::GsimError::Parse(_)) => {}
        other => panic!("broken design: expected Parse error, got {other:?}"),
    }

    // The connection survives; a real design still opens on it.
    c.open_design(DESIGN, "interp").expect("open after error");

    // Unknown-signal taxonomy crosses the wire intact.
    match c.peek("no_such_signal") {
        Err(gsim::GsimError::UnknownSignal(name)) => assert_eq!(name, "no_such_signal"),
        other => panic!("expected UnknownSignal, got {other:?}"),
    }
    // Pokes queue: the error surfaces by the next sync fence at the
    // latest, typed as an unknown-signal rejection.
    let queued = c
        .poke_u64("no_such_input", 1)
        .and_then(|()| c.step(1))
        .and_then(|()| c.step(1));
    match queued {
        Err(gsim::GsimError::UnknownSignal(_) | gsim::GsimError::NotAnInput(_)) => {}
        other => panic!("expected a queued unknown-input rejection, got {other:?}"),
    }

    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The `list` protocol command and `Session` introspection agree
/// across the process boundary: a remote session reports the same
/// inputs/signals/memories as an in-process one on the same design.
#[test]
fn remote_introspection_matches_local() {
    let graph = dut_graph();
    let (mut local, _) = gsim::Compiler::new(&graph)
        .preset(gsim::Preset::Gsim)
        .build()
        .unwrap();
    let (mut server, cache_dir) = start_server("introspect");
    let ep = server.endpoint().clone();
    let mut remote = ClientSession::connect(&ep).expect("connect");
    remote.open_design(DESIGN, "interp").expect("open");

    assert_eq!(remote.inputs().unwrap(), local.inputs().unwrap());
    assert_eq!(remote.signals().unwrap(), local.signals().unwrap());
    assert_eq!(remote.memories().unwrap(), local.memories().unwrap());
    drop(remote);
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The scenario-exploration wire command over a Unix-domain socket:
/// `explore 8 <nbytes>` on a warmed remote session streams one
/// canonical `branch` line per perturbed branch, and every line is
/// byte-identical to a local explorer replay over the same compiled
/// image (pass pipeline + default engine options, exactly as the
/// service builds interp sessions). The remote session itself is
/// handed back untouched at its pre-explore cycle.
#[test]
fn remote_explore_matches_local_replay() {
    let warm_cycles = 6u64;
    let branches = 8usize;
    let sock = std::env::temp_dir().join(format!("gsim_svc_explore_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let cache_dir =
        std::env::temp_dir().join(format!("gsim_svc_e2e_{}_explore", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut server = Server::start(ServerConfig::new(Endpoint::Unix(sock.clone()), &cache_dir))
        .expect("server binds a unix socket");
    let ep = server.endpoint().clone();

    let warm = gsim::Scenario {
        loads: vec![],
        frames: frames_for(5, warm_cycles),
    };
    let base = gsim::Scenario {
        loads: vec![],
        frames: frames_for(6, 24),
    };

    let mut remote = ClientSession::connect(&ep).expect("connect");
    remote.open_design(DESIGN, "interp").expect("open design");
    remote.run_scenario(&warm).expect("remote warmup");
    let lines = remote.explore(&base, branches).expect("remote explore");
    assert_eq!(lines.len(), branches, "one wire line per branch");
    assert_eq!(
        remote.cycle(),
        warm_cycles,
        "session handed back pre-explore"
    );

    // Local replay down the exact same build path the service uses
    // for `interp` sessions.
    let (optimized, _) = gsim_passes::run(dut_graph(), &gsim_passes::PassOptions::all());
    let mut local =
        gsim_sim::Simulator::compile(&optimized, &gsim_sim::SimOptions::default()).unwrap();
    local.run_scenario(&warm).expect("local warmup");
    let report = gsim::Explorer::new(&mut local)
        .run(&base, branches, None)
        .expect("local explore");
    for (remote_line, b) in lines.iter().zip(&report.branches) {
        assert_eq!(remote_line, &b.render_wire(), "branch {}", b.index);
    }
    drop(remote);
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_file(&sock);
}
