//! End-to-end integration: real RV32I programs on stuCore across every
//! simulator preset, checked against architectural results.

use gsim::{Compiler, Preset, Simulator};
use gsim_workloads::programs::{self, Program};

fn run_program(sim: &mut Simulator, p: &Program) -> u64 {
    sim.load_mem("imem", &p.image).unwrap();
    sim.poke_u64("reset", 1).unwrap();
    sim.run(2);
    sim.poke_u64("reset", 0).unwrap();
    let mut ran = 0;
    while ran < p.max_cycles && sim.peek_u64("halt") != Some(1) {
        sim.run(32);
        ran += 32;
    }
    assert_eq!(sim.peek_u64("halt"), Some(1), "{} did not halt", p.name);
    sim.peek_u64("result").expect("result port")
}

fn all_presets() -> Vec<Preset> {
    vec![
        Preset::Verilator,
        Preset::VerilatorMt(2),
        Preset::Essent,
        Preset::Arcilator,
        Preset::Gsim,
        Preset::GsimMt(2),
        Preset::GsimMt(4),
    ]
}

#[test]
fn fib_on_every_preset() {
    let graph = gsim_designs::stu_core();
    let p = programs::fib(15);
    for preset in all_presets() {
        let (mut sim, _) = Compiler::new(&graph).preset(preset).build().unwrap();
        assert_eq!(
            run_program(&mut sim, &p),
            p.expected_result,
            "{}",
            preset.name()
        );
    }
}

#[test]
fn coremark_mini_on_every_preset() {
    let graph = gsim_designs::stu_core();
    let p = programs::coremark_mini(3);
    for preset in all_presets() {
        let (mut sim, _) = Compiler::new(&graph).preset(preset).build().unwrap();
        assert_eq!(
            run_program(&mut sim, &p),
            p.expected_result,
            "{}",
            preset.name()
        );
    }
}

#[test]
fn linux_boot_mini_checksum() {
    let graph = gsim_designs::stu_core();
    let p = programs::linux_boot_mini(120);
    let (mut sim, _) = Compiler::new(&graph).preset(Preset::Gsim).build().unwrap();
    assert_eq!(run_program(&mut sim, &p), p.expected_result);
}

#[test]
fn memory_programs_on_gsim_and_verilator() {
    let graph = gsim_designs::stu_core();
    for p in [programs::bubble_sort(), programs::memcpy_bench(24)] {
        for preset in [Preset::Verilator, Preset::Gsim] {
            let (mut sim, _) = Compiler::new(&graph).preset(preset).build().unwrap();
            assert_eq!(
                run_program(&mut sim, &p),
                p.expected_result,
                "{} on {}",
                p.name,
                preset.name()
            );
        }
    }
}

#[test]
fn gsim_evaluates_fewer_nodes_than_it_has() {
    // The essential engine's reason to exist: the activity factor on a
    // real CPU running a real program is far below 1.
    let graph = gsim_designs::stu_core();
    let p = programs::fib(20);
    let (mut sim, report) = Compiler::new(&graph).preset(Preset::Gsim).build().unwrap();
    run_program(&mut sim, &p);
    let af = sim.counters().activity_factor(report.nodes_after);
    assert!(
        af < 0.95,
        "essential engine should skip some work, af = {af}"
    );
}

#[test]
fn dmem_state_matches_across_presets() {
    let graph = gsim_designs::stu_core();
    let p = programs::memcpy_bench(8);
    let mut images = Vec::new();
    for preset in [Preset::Verilator, Preset::Gsim, Preset::Essent] {
        let (mut sim, _) = Compiler::new(&graph).preset(preset).build().unwrap();
        run_program(&mut sim, &p);
        let dst_base = 6144 / 4;
        let words: Vec<u64> = (0..8)
            .map(|i| {
                sim.read_mem("dmem", dst_base + i)
                    .unwrap()
                    .to_u64()
                    .unwrap()
            })
            .collect();
        images.push(words);
    }
    assert_eq!(images[0], images[1]);
    assert_eq!(images[1], images[2]);
}
