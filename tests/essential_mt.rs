//! Acceptance tests for the parallel essential-signal engine:
//! `EssentialMt` must produce bit-identical peek results to the
//! reference interpreter and the sequential `Essential` engine on
//! stuCore and the synthetic designs at 1, 2 and 4 threads, with
//! run-to-run-stable optimization stats.

use gsim::{Counters, SimOptions, Simulator};
use gsim_graph::interp::RefInterp;
use gsim_workloads::programs;

const THREADS: [usize; 3] = [1, 2, 4];

/// stuCore running a real program: every output port of every engine
/// matches the reference interpreter cycle-for-cycle (sampled every few
/// cycles to keep the reference's cost bounded).
#[test]
fn stucore_bit_identical_across_threads() {
    let graph = gsim_designs::stu_core();
    let outputs: Vec<String> = graph
        .outputs()
        .iter()
        .map(|&o| graph.display_name(o))
        .collect();
    let p = programs::fib(8);

    let mut reference = RefInterp::new(&graph).unwrap();
    reference.load_mem("imem", &p.image).unwrap();
    let mut engines: Vec<(String, Simulator)> = Vec::new();
    // The full differential matrix: sequential + 1/2/4 threads, each
    // with superinstruction fusion on and off.
    for fusion in [true, false] {
        let tag = if fusion { "" } else { "-no-fuse" };
        for (label, opts) in std::iter::once((format!("essential{tag}"), SimOptions::default()))
            .chain(
                THREADS
                    .iter()
                    .map(|&t| (format!("essential-mt{t}{tag}"), SimOptions::essential_mt(t))),
            )
        {
            let opts = SimOptions {
                superinstr_fusion: fusion,
                ..opts
            };
            let mut sim = Simulator::compile(&graph, &opts).unwrap();
            sim.load_mem("imem", &p.image).unwrap();
            engines.push((label, sim));
        }
    }

    reference.poke_u64("reset", 1).unwrap();
    for (_, sim) in &mut engines {
        sim.poke_u64("reset", 1).unwrap();
    }
    reference.run(2);
    for (_, sim) in &mut engines {
        sim.run(2);
    }
    reference.poke_u64("reset", 0).unwrap();
    for (_, sim) in &mut engines {
        sim.poke_u64("reset", 0).unwrap();
    }

    let mut halted = false;
    for _ in 0..(p.max_cycles / 4) {
        reference.run(4);
        for (label, sim) in &mut engines {
            sim.run(4);
            for out in &outputs {
                assert_eq!(
                    sim.peek(out).as_ref(),
                    reference.peek(out),
                    "{label} diverged from the reference on {out} at cycle {}",
                    sim.cycle()
                );
            }
        }
        if reference.peek_u64("halt") == Some(1) {
            halted = true;
            break;
        }
    }
    assert!(halted, "fib did not halt within its budget");
    assert_eq!(reference.peek_u64("result"), Some(p.expected_result));
}

/// A synthetic core under churning stimulus: `EssentialMt` at every
/// thread count matches the sequential essential engine bit for bit,
/// evaluates exactly the same work, and reports identical stats when
/// the run is repeated.
#[test]
fn synthetic_cores_bit_identical_and_stats_stable() {
    for (name, target) in [("Rocket", 1_200), ("BOOM", 2_500)] {
        synthetic_core_case(name, target);
    }
}

fn synthetic_core_case(name: &str, target: usize) {
    let params = gsim_designs::SynthParams::for_target(name, target);
    let graph = gsim_designs::synth_core(&params);
    let outputs: Vec<String> = graph
        .outputs()
        .iter()
        .map(|&o| graph.display_name(o))
        .collect();

    let drive_and_snapshot = |opts: &SimOptions| -> (Vec<Option<gsim_value::Value>>, Counters) {
        let mut sim = Simulator::compile(&graph, opts).unwrap();
        let handles: Vec<_> = (0..64)
            .map_while(|l| sim.input_handle(&format!("op_in_{l}")))
            .collect();
        sim.poke_u64("reset", 1).ok();
        sim.run(2);
        sim.poke_u64("reset", 0).ok();
        sim.reset_counters();
        sim.run_driven(96, |cycle, frame| {
            for (l, h) in handles.iter().enumerate() {
                // Deterministic churn: a different op pattern per lane
                // per cycle, with bubbles mixed in.
                let v = if cycle % 3 == 0 {
                    0
                } else {
                    (cycle
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .rotate_left(l as u32 * 7))
                        | 1
                };
                frame.set(*h, v);
            }
        });
        let peeks = outputs.iter().map(|o| sim.peek(o)).collect();
        (peeks, *sim.counters())
    };

    let (seq_peeks, seq_counters) = drive_and_snapshot(&SimOptions::default());
    for fusion in [true, false] {
        for t in THREADS {
            let opts = SimOptions {
                superinstr_fusion: fusion,
                ..SimOptions::essential_mt(t)
            };
            let (mt_peeks, mt_counters) = drive_and_snapshot(&opts);
            assert_eq!(
                mt_peeks, seq_peeks,
                "essential-mt{t} fusion={fusion} diverged"
            );
            // The parallel sweep does exactly the sequential engine's
            // work (only the active-bit examination strategy differs),
            // and fusion changes none of the semantic counters.
            assert_eq!(mt_counters.supernode_evals, seq_counters.supernode_evals);
            assert_eq!(mt_counters.node_evals, seq_counters.node_evals);
            assert_eq!(mt_counters.value_changes, seq_counters.value_changes);
            assert_eq!(mt_counters.activations, seq_counters.activations);
            // Run-to-run stability of the full stat set.
            let (peeks2, counters2) = drive_and_snapshot(&opts);
            assert_eq!(peeks2, mt_peeks, "essential-mt{t} outputs wobbled");
            assert_eq!(counters2, mt_counters, "essential-mt{t} stats wobbled");
        }
    }
}
