//! AoT differential matrix: the **compiled** simulator binary (emit →
//! `rustc -O` → run) must produce bit-identical *outputs* to the
//! reference interpreter, cycle for cycle, on every design class the
//! repository ships — the counter example, the real stuCore CPU
//! running a real program, a register-driven-reset synchronizer, and
//! randomized `gsim_designs` netlists.
//!
//! This is the load-bearing correctness argument for the AoT backend:
//! the interpreter engines are pinned against `RefInterp` elsewhere,
//! so agreement with `RefInterp` here places the compiled binary in
//! the same equivalence class.
//!
//! Semantic counters are a weaker claim, deliberately: they must be
//! deterministic run to run, and they must *equal* the interpreter
//! engine's `node_evals`/`supernode_evals`/`value_changes` on stimulus
//! that never asserts a reset (see
//! [`counter_fir_matches_reference_and_interpreter`]). Under an
//! asserted reset the two backends count differently by construction:
//! the engine commits a register's shadow and then overwrites it on
//! the slow-path reset (two stores, counting/activating the
//! intermediate value), while the compiled code folds reset into one
//! commit-time mux (one store, counting only the net change) — same
//! outputs, different bookkeeping.

use gsim::{Compiler, Preset, Stimulus};
use gsim_codegen::{compile_aot, AotOptions, AotSim};
use gsim_graph::interp::RefInterp;
use gsim_graph::Graph;
use gsim_workloads::programs;

/// Deterministic per-(cycle, lane) stimulus word (splitmix64).
fn stim_word(cycle: u64, lane: u64) -> u64 {
    let mut z = cycle
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(lane.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the compiled binary and the reference interpreter over the
/// same per-cycle stimulus and compares every output, every cycle.
fn diff_against_reference(
    label: &str,
    graph: &Graph,
    aot: &AotSim,
    cycles: u64,
    loads: &[(String, Vec<u64>)],
    frames: &[Vec<(String, u64)>],
) {
    let outputs: Vec<String> = graph
        .outputs()
        .iter()
        .map(|&o| graph.node(o).name.clone())
        .filter(|n| !n.is_empty())
        .collect();
    assert!(!outputs.is_empty(), "{label}: design has no named outputs");

    let mut reference = RefInterp::new(graph).unwrap();
    for (mem, image) in loads {
        reference.load_mem(mem, image).unwrap();
    }
    let stim = Stimulus {
        loads: loads.to_vec(),
        frames: frames.to_vec(),
    };
    let run = aot
        .run(cycles, &stim, true)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(run.trace.len() as u64, cycles, "{label}: trace rows");

    for cycle in 0..cycles {
        if let Some(frame) = frames.get(cycle as usize) {
            for (name, v) in frame {
                reference.poke_u64(name, *v).unwrap();
            }
        }
        reference.step();
        let row = &run.trace[cycle as usize];
        for out in &outputs {
            let want = format!("{:x}", reference.peek(out).unwrap());
            let got = row
                .iter()
                .find(|(n, _)| n == out)
                .map(|(_, v)| v.as_str())
                .unwrap_or_else(|| panic!("{label}: output {out} missing from trace"));
            assert_eq!(
                got, want,
                "{label}: output {out} diverged from RefInterp at cycle {cycle}"
            );
        }
    }

    // Semantic counters: present, plausible, and deterministic across
    // two runs of the same binary over the same stimulus.
    assert_eq!(
        run.counter("cycles"),
        Some(cycles),
        "{label}: cycle counter"
    );
    assert!(run.counter("supernode_evals").unwrap() > 0, "{label}");
    assert!(run.counter("node_evals").unwrap() > 0, "{label}");
    let rerun = aot.run(cycles, &stim, false).unwrap();
    assert_eq!(run.counters, rerun.counters, "{label}: counters wobbled");
    assert_eq!(run.peeks, rerun.peeks, "{label}: peeks wobbled");
}

#[test]
fn counter_fir_matches_reference_and_interpreter() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available");
        return;
    }
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/counter.fir"))
        .expect("examples/counter.fir is committed");
    let graph = gsim_firrtl::compile(&src).unwrap();
    // Through the full facade: pass pipeline + emit + rustc.
    let (aot, report) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();
    assert!(report.code_bytes > 0 && report.binary_bytes > 0);
    // Reset pulses mid-run exercise the synchronous-reset commit path.
    let mut frames: Vec<Vec<(String, u64)>> = Vec::new();
    for c in 0..40u64 {
        frames.push(vec![("reset".into(), u64::from(c % 11 == 7))]);
    }
    diff_against_reference("counter.fir", &graph, &aot, 40, &[], &frames);

    // And against the interpreter engine through the same facade.
    let (mut interp, _) = Compiler::new(&graph).preset(Preset::Gsim).build().unwrap();
    let stim = Stimulus {
        loads: vec![],
        frames: frames.clone(),
    };
    let run = aot.run(40, &stim, false).unwrap();
    for (c, frame) in frames.iter().enumerate() {
        let _ = c;
        for (name, v) in frame {
            interp.poke_u64(name, *v).unwrap();
        }
        interp.step();
    }
    assert_eq!(
        run.peek("out").map(str::to_string),
        interp.peek("out").map(|v| format!("{v:x}")),
        "compiled binary vs interpreter engine"
    );

    // Counter parity against the interpreter engine, on reset-quiescent
    // stimulus where both backends count identically (see module docs
    // for why an asserted reset makes the bookkeeping — not the
    // outputs — diverge): both are built from the same partition, use
    // the same everything-active start, change-gated pokes and stores,
    // and the same per-supernode node accounting.
    let quiet: Vec<Vec<(String, u64)>> = (0..40u64).map(|_| vec![("reset".into(), 0)]).collect();
    let (mut qinterp, _) = Compiler::new(&graph).preset(Preset::Gsim).build().unwrap();
    for frame in &quiet {
        for (name, v) in frame {
            qinterp.poke_u64(name, *v).unwrap();
        }
        qinterp.step();
    }
    let qrun = aot
        .run(
            40,
            &Stimulus {
                loads: vec![],
                frames: quiet,
            },
            false,
        )
        .unwrap();
    let ic = qinterp.counters();
    for (key, want) in [
        ("cycles", ic.cycles),
        ("node_evals", ic.node_evals),
        ("supernode_evals", ic.supernode_evals),
        ("value_changes", ic.value_changes),
    ] {
        assert_eq!(
            qrun.counter(key),
            Some(want),
            "compiled {key} diverged from the interpreter engine"
        );
    }
}

/// The reset-synchronizer pattern: the counter's reset signal is
/// itself a register, so a commit phase that reads reset signals live
/// while committing registers one-by-one in node order observes the
/// *post-edge* value and applies reset one cycle early. The emitted
/// commit() must latch every distinct reset signal before the first
/// register store, mirroring RefInterp's compute-then-commit phases.
#[test]
fn register_driven_reset_matches_reference() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available");
        return;
    }
    let graph = gsim_designs::reset_synchronizer();
    let cycles = 48u64;
    // Isolated pulses and a double pulse, so the synchronized reset
    // asserts while the counter holds both zero and nonzero values.
    let frames: Vec<Vec<(String, u64)>> = (0..cycles)
        .map(|c| {
            let rst = u64::from(c % 13 == 4 || c % 17 == 8 || c % 17 == 9);
            vec![("rst".to_string(), rst)]
        })
        .collect();
    // Through the full facade (pass pipeline + slow-path reset) …
    let (aot, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();
    diff_against_reference("sync-reset/facade", &graph, &aot, cycles, &[], &frames);
    // … and straight through codegen, isolating the emitter itself.
    let aot = compile_aot(&graph, &AotOptions::default()).unwrap();
    diff_against_reference("sync-reset/direct", &graph, &aot, cycles, &[], &frames);
}

#[test]
fn stu_core_program_matches_reference() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available");
        return;
    }
    let graph = gsim_designs::stu_core();
    let (aot, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();
    let program = programs::fib(8);
    let cycles = program.max_cycles.min(400);
    // Reset pulse, then run the program.
    let frames: Vec<Vec<(String, u64)>> = (0..cycles)
        .map(|c| vec![("reset".to_string(), u64::from(c < 2))])
        .collect();
    let loads = vec![("imem".to_string(), program.image.clone())];
    diff_against_reference("stuCore/fib", &graph, &aot, cycles, &loads, &frames);

    // The architectural result is the program's expected one.
    let stim = Stimulus {
        loads: loads.clone(),
        frames: frames.clone(),
    };
    let run = aot.run(cycles, &stim, false).unwrap();
    if run.peek("halt") == Some("1") {
        assert_eq!(
            run.peek("result"),
            Some(format!("{:x}", program.expected_result).as_str()),
            "stuCore/fib architectural result"
        );
    }
}

#[test]
fn randomized_netlists_match_reference() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available");
        return;
    }
    for (tag, target, seed) in [("RandA", 700usize, 0xA5A5u64), ("RandB", 1100, 0x1CEB00DA)] {
        let mut params = gsim_designs::SynthParams::for_target("Rocket", target);
        params.seed = seed;
        params.name = format!("Rand{seed:x}");
        let graph = gsim_designs::synth_core(&params);
        // Straight through codegen (no pass pipeline), so the diff
        // isolates the AoT backend itself.
        let aot =
            compile_aot(&graph, &AotOptions::default()).unwrap_or_else(|e| panic!("{tag}: {e}"));
        let input_names: Vec<String> = graph
            .inputs()
            .iter()
            .map(|&i| graph.node(i).name.clone())
            .filter(|n| !n.is_empty() && n != "clock")
            .collect();
        let cycles = 48u64;
        let frames: Vec<Vec<(String, u64)>> = (0..cycles)
            .map(|c| {
                input_names
                    .iter()
                    .enumerate()
                    .map(|(lane, name)| {
                        let v = if name == "reset" {
                            u64::from(c < 2 || c % 19 == 11)
                        } else {
                            stim_word(c, lane as u64)
                        };
                        (name.clone(), v)
                    })
                    .collect()
            })
            .collect();
        diff_against_reference(tag, &graph, &aot, cycles, &[], &frames);
    }
}
