//! AoT differential matrix, through the backend-agnostic `Session`
//! trait: the **persistent compiled session** (emit → `rustc -O` →
//! one resident process in `--serve` mode) must produce bit-identical
//! outputs to the reference interpreter, cycle for cycle, on every
//! design class the repository ships — the counter example, the real
//! stuCore CPU running a real program, a register-driven-reset
//! synchronizer, and randomized `gsim_designs` netlists. The same
//! generic harness drives interpreter presets alongside it, so one
//! test body pins the whole backend matrix.
//!
//! This is the load-bearing correctness argument for the AoT backend:
//! the interpreter engines are pinned against `RefInterp` elsewhere,
//! so agreement with `RefInterp` here places the compiled process in
//! the same equivalence class. Values are compared as typed
//! [`gsim_value::Value`]s (exact width), not hex strings.
//!
//! Semantic counters are a weaker claim, deliberately: they must be
//! deterministic run to run, and they must *equal* the interpreter
//! engine's `node_evals`/`supernode_evals`/`value_changes` on stimulus
//! that never asserts a reset (see
//! [`counter_fir_matches_reference_and_interpreter`]). Under an
//! asserted reset the two backends count differently by construction:
//! the engine commits a register's shadow and then overwrites it on
//! the slow-path reset (two stores, counting/activating the
//! intermediate value), while the compiled code folds reset into one
//! commit-time mux (one store, counting only the net change) — same
//! outputs, different bookkeeping.

mod common;

use common::{assert_sessions_match_reference, preset_sessions, push_aot_session, stim_word};
use gsim::{Compiler, EngineChoice, Preset, Scenario};
use gsim_codegen::{compile_aot, AotOptions};
use gsim_workloads::programs;

#[test]
fn counter_fir_matches_reference_and_interpreter() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available");
        return;
    }
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/counter.fir"))
        .expect("examples/counter.fir is committed");
    let graph = gsim_firrtl::compile(&src).unwrap();
    // Reset pulses mid-run exercise the synchronous-reset commit path.
    let frames: Vec<Vec<(String, u64)>> = (0..40u64)
        .map(|c| vec![("reset".into(), u64::from(c % 11 == 7))])
        .collect();
    // Interpreter presets and the persistent compiled process, one
    // harness invocation.
    let mut sessions = preset_sessions(&graph, &[Preset::Gsim, Preset::Essent, Preset::Verilator]);
    push_aot_session(&graph, &mut sessions);
    assert_sessions_match_reference("counter.fir", &graph, &mut sessions, 40, &[], &frames);

    // Batch-mode cross-check: one respawned `AotSim::run` per
    // invocation still reports deterministic typed peeks + counters.
    let (aot, report) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();
    assert!(report.code_bytes > 0 && report.binary_bytes > 0);
    let stim = Scenario {
        loads: vec![],
        frames: frames.clone(),
    };
    let run = aot.run(40, &stim, true).unwrap();
    assert_eq!(run.trace.len(), 40, "trace rows");
    assert_eq!(run.counter("cycles"), Some(40));
    let rerun = aot.run(40, &stim, false).unwrap();
    assert_eq!(run.counters, rerun.counters, "counters wobbled");
    assert_eq!(run.peeks, rerun.peeks, "peeks wobbled");
    // The batch peeks agree with the persistent session's typed peeks.
    let (_, aot_session) = sessions.last_mut().expect("aot in matrix");
    assert_eq!(run.peek("out"), Some(&aot_session.peek("out").unwrap()));

    // Counter parity against the interpreter engine, through the
    // trait's `counters()`, on reset-quiescent stimulus where both
    // backends count identically (see module docs for why an asserted
    // reset makes the bookkeeping — not the outputs — diverge).
    let quiet: Vec<Vec<(String, u64)>> = (0..40u64).map(|_| vec![("reset".into(), 0)]).collect();
    let mut qinterp = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_session(EngineChoice::Essential)
        .unwrap();
    let mut qaot = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_session(EngineChoice::Aot)
        .unwrap();
    let quiet_scenario = Scenario {
        loads: vec![],
        frames: quiet.clone(),
    };
    for s in [&mut qinterp, &mut qaot] {
        s.run_scenario(&quiet_scenario).unwrap();
    }
    let (ic, ac) = (qinterp.counters().unwrap(), qaot.counters().unwrap());
    for (key, want, got) in [
        ("cycles", ic.cycles, ac.cycles),
        ("node_evals", ic.node_evals, ac.node_evals),
        ("supernode_evals", ic.supernode_evals, ac.supernode_evals),
        ("value_changes", ic.value_changes, ac.value_changes),
    ] {
        assert_eq!(got, want, "compiled {key} diverged from the interpreter");
    }
}

/// The reset-synchronizer pattern: the counter's reset signal is
/// itself a register, so a commit phase that reads reset signals live
/// while committing registers one-by-one in node order observes the
/// *post-edge* value and applies reset one cycle early. The emitted
/// commit() must latch every distinct reset signal before the first
/// register store, mirroring RefInterp's compute-then-commit phases.
#[test]
fn register_driven_reset_matches_reference() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available");
        return;
    }
    let graph = gsim_designs::reset_synchronizer();
    let cycles = 48u64;
    // Isolated pulses and a double pulse, so the synchronized reset
    // asserts while the counter holds both zero and nonzero values.
    let frames: Vec<Vec<(String, u64)>> = (0..cycles)
        .map(|c| {
            let rst = u64::from(c % 13 == 4 || c % 17 == 8 || c % 17 == 9);
            vec![("rst".to_string(), rst)]
        })
        .collect();
    // Through the full facade (pass pipeline + slow-path reset) …
    let mut sessions = preset_sessions(&graph, &[Preset::Gsim]);
    push_aot_session(&graph, &mut sessions);
    // … and straight through codegen, isolating the emitter itself.
    let direct = compile_aot(&graph, &AotOptions::default()).unwrap();
    sessions.push(("aot-direct".into(), Box::new(direct.session().unwrap())));
    assert_sessions_match_reference("sync-reset", &graph, &mut sessions, cycles, &[], &frames);
}

#[test]
fn stu_core_program_matches_reference() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available");
        return;
    }
    let graph = gsim_designs::stu_core();
    let program = programs::fib(8);
    let cycles = program.max_cycles.min(400);
    // Reset pulse, then run the program.
    let frames: Vec<Vec<(String, u64)>> = (0..cycles)
        .map(|c| vec![("reset".to_string(), u64::from(c < 2))])
        .collect();
    let loads = vec![("imem".to_string(), program.image.clone())];
    let mut sessions = preset_sessions(&graph, &[Preset::Gsim]);
    // One compiled binary serves both the persistent session in the
    // matrix and the batch rerun-determinism check below.
    let (aot, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();
    sessions.push(("aot".into(), Box::new(aot.session().unwrap())));
    assert_sessions_match_reference(
        "stuCore/fib",
        &graph,
        &mut sessions,
        cycles,
        &loads,
        &frames,
    );

    // Run-to-run determinism of the batch path on a real program:
    // identical typed peeks and counters from two respawned runs.
    let stim = Scenario {
        loads: loads.clone(),
        frames: frames.clone(),
    };
    let run = aot.run(cycles, &stim, false).unwrap();
    let rerun = aot.run(cycles, &stim, false).unwrap();
    assert_eq!(run.counters, rerun.counters, "stuCore counters wobbled");
    assert_eq!(run.peeks, rerun.peeks, "stuCore peeks wobbled");
    assert_eq!(run.counter("cycles"), Some(cycles));
    assert!(run.counter("supernode_evals").unwrap() > 0);
    assert!(run.counter("node_evals").unwrap() > 0);

    // The architectural result is the program's expected one, read
    // back through the trait from the persistent compiled process.
    let (_, aot_session) = sessions.last_mut().expect("aot in matrix");
    if aot_session.peek_u64("halt").unwrap() == Some(1) {
        assert_eq!(
            aot_session.peek_u64("result").unwrap(),
            Some(program.expected_result),
            "stuCore/fib architectural result"
        );
    }
}

#[test]
fn randomized_netlists_match_reference() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available");
        return;
    }
    for (tag, target, seed) in [("RandA", 700usize, 0xA5A5u64), ("RandB", 1100, 0x1CEB00DA)] {
        let mut params = gsim_designs::SynthParams::for_target("Rocket", target);
        params.seed = seed;
        params.name = format!("Rand{seed:x}");
        let graph = gsim_designs::synth_core(&params);
        let input_names: Vec<String> = graph
            .inputs()
            .iter()
            .map(|&i| graph.node(i).name.clone())
            .filter(|n| !n.is_empty() && n != "clock")
            .collect();
        let cycles = 48u64;
        let frames: Vec<Vec<(String, u64)>> = (0..cycles)
            .map(|c| {
                input_names
                    .iter()
                    .enumerate()
                    .map(|(lane, name)| {
                        let v = if name == "reset" {
                            u64::from(c < 2 || c % 19 == 11)
                        } else {
                            stim_word(c, lane as u64)
                        };
                        (name.clone(), v)
                    })
                    .collect()
            })
            .collect();
        // Straight through codegen (no pass pipeline), so the diff
        // isolates the AoT backend itself, alongside an unoptimized
        // interpreter preset through the same harness.
        let mut sessions = preset_sessions(&graph, &[Preset::Verilator]);
        let direct =
            compile_aot(&graph, &AotOptions::default()).unwrap_or_else(|e| panic!("{tag}: {e}"));
        sessions.push(("aot-direct".into(), Box::new(direct.session().unwrap())));
        assert_sessions_match_reference(tag, &graph, &mut sessions, cycles, &[], &frames);

        // Batch rerun determinism on the randomized netlist.
        let stim = Scenario {
            loads: vec![],
            frames: frames.clone(),
        };
        let run = direct.run(cycles, &stim, false).unwrap();
        let rerun = direct.run(cycles, &stim, false).unwrap();
        assert_eq!(run.counters, rerun.counters, "{tag}: counters wobbled");
        assert_eq!(run.peeks, rerun.peeks, "{tag}: peeks wobbled");
    }
}
