//! Cross-crate equivalence: the full optimization pipeline and every
//! engine preserve cycle-accurate behaviour on generated designs, and
//! FIRRTL survives a print/parse round trip. The preset matrix runs
//! through the generic `&mut dyn Session` harness, with the
//! persistent AoT session in the loop alongside the interpreter
//! engines.

mod common;

use common::{assert_sessions_match_reference, preset_sessions, push_aot_session};
use gsim::{Compiler, OptOptions, Preset};
use gsim_designs::SynthParams;
use gsim_workloads::Profile;

#[test]
fn synth_core_equivalent_across_presets_and_reference() {
    let params = SynthParams::for_target("Rocket", 1_200);
    let graph = gsim_designs::synth_core(&params);
    let mut sessions = preset_sessions(
        &graph,
        &[
            Preset::Verilator,
            Preset::VerilatorMt(2),
            Preset::Essent,
            Preset::Arcilator,
            Preset::Gsim,
        ],
    );
    push_aot_session(&graph, &mut sessions);
    let mut stim = Profile::coremark().stimulus(1, 0xA5);
    let frames: Vec<Vec<(String, u64)>> = (0..120)
        .map(|_| vec![("op_in_0".to_string(), stim.next_cycle()[0])])
        .collect();
    assert_sessions_match_reference("synth/Rocket", &graph, &mut sessions, 120, &[], &frames);
}

/// The reset signal of a register can itself be a register (the
/// reset-synchronizer pattern). Engines must latch reset signals
/// pre-edge, like `RefInterp`'s compute-then-commit phases — a live
/// read during the one-by-one register commit sees the post-edge value
/// and applies reset a cycle early. This covers the slow-path reset of
/// the GSIM presets and the fast-path mux of the baseline presets.
#[test]
fn register_driven_reset_matches_reference_across_presets() {
    let graph = gsim_designs::reset_synchronizer();
    let mut sessions = preset_sessions(
        &graph,
        &[
            Preset::Verilator,
            Preset::VerilatorMt(2),
            Preset::Essent,
            Preset::Arcilator,
            Preset::Gsim,
            Preset::GsimMt(2),
        ],
    );
    // Isolated pulses and a double pulse, so the synchronized reset
    // asserts while the counter holds both zero and nonzero values.
    let frames: Vec<Vec<(String, u64)>> = (0..64u64)
        .map(|cycle| {
            let rst = u64::from(cycle % 13 == 4 || cycle % 17 == 8 || cycle % 17 == 9);
            vec![("rst".to_string(), rst)]
        })
        .collect();
    assert_sessions_match_reference("sync-reset", &graph, &mut sessions, 64, &[], &frames);
}

#[test]
fn staircase_configs_agree_on_synth_core() {
    let params = SynthParams::for_target("stu", 800);
    let graph = gsim_designs::synth_core(&params);
    let mut sims: Vec<(String, gsim::Simulator)> = OptOptions::staircase()
        .into_iter()
        .map(|(name, opts)| {
            (
                name.to_string(),
                Compiler::new(&graph).options(opts).build().unwrap().0,
            )
        })
        .collect();
    let mut stim = Profile::linux().stimulus(1, 0x77);
    for cycle in 0..100 {
        let op = stim.next_cycle()[0];
        let mut golden = None;
        for (name, sim) in &mut sims {
            sim.poke_u64("op_in_0", op).unwrap();
            sim.step();
            let sig = sim.peek_u64("signature");
            match &golden {
                None => golden = Some(sig),
                Some(g) => assert_eq!(&sig, g, "{name} diverged at cycle {cycle}"),
            }
        }
    }
}

#[test]
fn stucore_firrtl_round_trips_through_printer() {
    let src = gsim_designs::stu_core_firrtl();
    let parsed = gsim_firrtl::parse(&src).unwrap();
    let printed = gsim_firrtl::print_circuit(&parsed);
    let reparsed = gsim_firrtl::parse(&printed).unwrap();
    let g1 = gsim_firrtl::lower(&parsed).unwrap();
    let g2 = gsim_firrtl::lower(&reparsed).unwrap();
    assert_eq!(g1.num_nodes(), g2.num_nodes());
    assert_eq!(g1.num_edges(), g2.num_edges());

    // Behavioural check: both lowered graphs run a program identically.
    let p = gsim_workloads::programs::fib(12);
    let mut results = Vec::new();
    for g in [&g1, &g2] {
        let (mut sim, _) = Compiler::new(g).preset(Preset::Gsim).build().unwrap();
        sim.load_mem("imem", &p.image).unwrap();
        sim.poke_u64("reset", 1).unwrap();
        sim.run(2);
        sim.poke_u64("reset", 0).unwrap();
        sim.run(p.max_cycles);
        results.push(sim.peek_u64("result"));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], Some(p.expected_result));
}

#[test]
fn codegen_emits_for_optimized_designs() {
    let params = SynthParams::for_target("stu", 600);
    let graph = gsim_designs::synth_core(&params);
    let (optimized, _) = gsim_passes::run(graph, &gsim_passes::PassOptions::all());
    for style in [
        gsim_codegen::Style::FullCycle,
        gsim_codegen::Style::Essential,
    ] {
        let out = gsim_codegen::emit(
            &optimized,
            style,
            &gsim_partition::PartitionOptions::default(),
        );
        assert!(out.code_bytes > 1_000);
        assert!(out.data_bytes > 0);
    }
}
