//! Chaos suite for the simulation service: deterministic faults
//! ([`gsim::FaultPlan`] on [`gsim::ServerConfig`]) break the service
//! in targeted ways — a failing AoT compile, a panicking session
//! thread, a hard connection drop, byte-at-a-time wire writes, a
//! killed AoT child behind a live client — and the tests pin the
//! degradation contract: the server keeps serving, errors cross the
//! wire typed, and supervised recovery is invisible to the client.

mod common;

use common::{assert_sessions_match_reference, stim_word};
use gsim::{ClientSession, Endpoint, FaultPlan, GsimError, Server, ServerConfig, Session};
use gsim_graph::Graph;

const DESIGN: &str = r#"
circuit ChaosSvc :
  module ChaosSvc :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<16>
    input b : UInt<16>
    output sum : UInt<17>
    output acc : UInt<16>
    reg r : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    r <= tail(add(r, xor(a, b)), 1)
    sum <= add(a, b)
    acc <= r
"#;

fn dut_graph() -> Graph {
    gsim_firrtl::compile(DESIGN).expect("compiles")
}

fn frames_for(lane: u64, cycles: u64) -> Vec<Vec<(String, u64)>> {
    (0..cycles)
        .map(|c| {
            vec![
                ("reset".to_string(), u64::from((c + lane) % 11 == 7)),
                ("a".to_string(), stim_word(c, lane) & 0xffff),
                ("b".to_string(), stim_word(c, lane + 1000) & 0xffff),
            ]
        })
        .collect()
}

/// A server whose config carries the given fault plan.
fn start_faulty_server(tag: &str, faults: FaultPlan) -> (Server, std::path::PathBuf) {
    let cache_dir =
        std::env::temp_dir().join(format!("gsim_chaos_svc_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut cfg = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()), &cache_dir);
    cfg.faults = faults;
    let server = Server::start(cfg).expect("server starts");
    (server, cache_dir)
}

/// Graceful degradation: when the AoT compile fails (injected
/// disk-full during publish — no `rustc` required for this path), a
/// `design … aot` request is served on the in-process threaded
/// backend with status `fallback`, and the session is fully
/// functional — pinned bit-identical against `RefInterp`.
#[test]
fn aot_compile_failure_degrades_to_jit() {
    let graph = dut_graph();
    let (mut server, cache_dir) = start_faulty_server(
        "fallback",
        FaultPlan {
            publish_io_error: true,
            ..FaultPlan::default()
        },
    );
    let ep = server.endpoint().clone();

    let mut c = ClientSession::connect(&ep).expect("connect");
    let info = c
        .open_design(DESIGN, "aot")
        .expect("open degrades, not fails");
    assert_eq!(info.status, "fallback", "aot compile failure degrades");

    let mut sessions = vec![("fallback".to_string(), Box::new(c) as Box<dyn Session>)];
    assert_sessions_match_reference(
        "chaos_service/fallback",
        &graph,
        &mut sessions,
        32,
        &[],
        &frames_for(1, 32),
    );

    let stats = server.stats();
    assert_eq!(stats.fallbacks, 1, "the degradation is counted");
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The service-level tentpole: the AoT child behind a remote session
/// is killed mid-run; the server's supervisor respawns and replays,
/// and the *client never notices* — every cycle still matches
/// `RefInterp` and no fallback was taken.
#[test]
fn service_recovers_child_kill_transparently() {
    if !gsim_codegen::rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let graph = dut_graph();
    let (mut server, cache_dir) = start_faulty_server(
        "killaot",
        FaultPlan {
            kill_child_at_cycle: Some(20),
            ..FaultPlan::default()
        },
    );
    let ep = server.endpoint().clone();

    let mut c = ClientSession::connect(&ep).expect("connect");
    let info = c.open_design(DESIGN, "aot").expect("open");
    assert_eq!(info.status, "miss", "first open compiles");

    let mut sessions = vec![("supervised".to_string(), Box::new(c) as Box<dyn Session>)];
    assert_sessions_match_reference(
        "chaos_service/kill",
        &graph,
        &mut sessions,
        64,
        &[],
        &frames_for(2, 64),
    );

    let stats = server.stats();
    assert_eq!(stats.fallbacks, 0, "recovery, not degradation");
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.cache.compiles, 1, "respawn reuses the artifact");
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// A panicking session thread is contained at the `catch_unwind`
/// boundary: the victim gets a typed `err backend` line, the panic is
/// counted, and the server keeps accepting fresh connections.
#[test]
fn panicking_session_is_contained() {
    let (mut server, cache_dir) = start_faulty_server(
        "panic",
        FaultPlan {
            // Command 1 is `design …`; command 2 (the peek) panics.
            panic_session_at_cmd: Some(2),
            ..FaultPlan::default()
        },
    );
    let ep = server.endpoint().clone();

    let mut victim = ClientSession::connect(&ep).expect("connect");
    victim.open_design(DESIGN, "interp").expect("open");
    let err = victim.peek("sum").unwrap_err();
    assert!(
        matches!(&err, GsimError::Backend(m) if m.contains("panicked")),
        "expected a typed panic report, got {err}"
    );

    // The blast radius is one connection: a new client is served by a
    // fresh thread, which panics at *its* second command too — but the
    // listener survives both.
    let mut second = ClientSession::connect(&ep).expect("connect after panic");
    second
        .open_design(DESIGN, "interp")
        .expect("open after panic");
    drop(second);

    let stats = server.stats();
    assert!(stats.panics >= 1, "panics counted, got {}", stats.panics);
    assert_eq!(stats.sessions, 2, "both connections were accepted");
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// A hard connection drop mid-session surfaces as a fatal transport
/// error on the client, and the listener keeps serving.
#[test]
fn dropped_connection_is_fatal_and_contained() {
    let (mut server, cache_dir) = start_faulty_server(
        "reset",
        FaultPlan {
            reset_session_at_cmd: Some(2),
            ..FaultPlan::default()
        },
    );
    let ep = server.endpoint().clone();

    let mut victim = ClientSession::connect(&ep).expect("connect");
    victim.open_design(DESIGN, "interp").expect("open");
    let err = victim.peek("sum").unwrap_err();
    assert!(err.is_fatal(), "a dropped connection is fatal: {err}");
    assert!(
        matches!(&err, GsimError::Io(_) | GsimError::SessionLost(_)),
        "expected a transport-class error, got {err}"
    );
    drop(victim);

    let mut second = ClientSession::connect(&ep).expect("connect after drop");
    second
        .open_design(DESIGN, "interp")
        .expect("open after drop");
    drop(second);
    assert_eq!(server.stats().sessions, 2);
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Byte-at-a-time wire writes (injected short writes on every server
/// response) must be invisible to a correct reader: the full
/// differential harness and the `stats` line both decode intact.
#[test]
fn short_writes_reassemble_identically() {
    let graph = dut_graph();
    let (mut server, cache_dir) = start_faulty_server(
        "short",
        FaultPlan {
            short_writes: true,
            ..FaultPlan::default()
        },
    );
    let ep = server.endpoint().clone();

    let mut c = ClientSession::connect(&ep).expect("connect");
    c.open_design(DESIGN, "interp").expect("open");
    let mut sessions = vec![("short-writes".to_string(), Box::new(c) as Box<dyn Session>)];
    assert_sessions_match_reference(
        "chaos_service/short_writes",
        &graph,
        &mut sessions,
        32,
        &[],
        &frames_for(4, 32),
    );

    // The multi-field stats line survives one-byte writes too.
    let mut c2 = ClientSession::connect(&ep).expect("connect");
    let stats = c2.stats().expect("stats decodes over short writes");
    assert_eq!(stats.sessions, 2);
    drop(c2);
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// `connect_with_retry` rides out a service that has not finished
/// binding yet, and still fails cleanly when nothing ever listens.
#[test]
fn connect_with_retry_rides_out_slow_bind() {
    let sock = std::env::temp_dir().join(format!("gsim_chaos_retry_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let cache_dir = std::env::temp_dir().join(format!("gsim_chaos_retry_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let ep = Endpoint::Unix(sock.clone());

    // The server binds only after a delay; a plain connect would fail.
    let late = {
        let (ep, cache_dir) = (ep.clone(), cache_dir.clone());
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(200));
            Server::start(ServerConfig::new(ep, &cache_dir)).expect("server starts")
        })
    };
    let mut c = ClientSession::connect_with_retry(&ep, 10, std::time::Duration::from_millis(25))
        .expect("retry rides out the slow bind");
    c.open_design(DESIGN, "interp").expect("open");
    c.step(4).expect("step");
    drop(c);
    let mut server = late.join().expect("server thread");
    server.stop();

    // Bounded failure: no listener, budget spent, typed socket error.
    let nowhere = Endpoint::Unix(std::env::temp_dir().join("gsim_chaos_no_such_service.sock"));
    let err = ClientSession::connect_with_retry(&nowhere, 2, std::time::Duration::from_millis(5));
    assert!(err.is_err(), "retry against nothing must give up");

    let _ = std::fs::remove_file(&sock);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
