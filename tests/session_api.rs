//! The backend-agnostic `Session` API, end to end: snapshot/restore
//! round trips pin bit-identical replay on every engine preset *and*
//! the persistent AoT session; a scripted poke/step/peek transcript
//! must read back identical typed values on every backend; and the
//! unified `GsimError` taxonomy is the same across the process
//! boundary.

mod common;

use common::{named_outputs, preset_sessions, push_aot_session};
use gsim::{Compiler, EngineChoice, GsimError, Preset, Scenario, Session};
use gsim_value::Value;

const ALL_PRESETS: &[Preset] = &[
    Preset::Verilator,
    Preset::VerilatorMt(2),
    Preset::Essent,
    Preset::Arcilator,
    Preset::Gsim,
    Preset::GsimMt(2),
    Preset::GsimJit,
];

/// Drives `n` cycles of deterministic churn and records every named
/// output after every cycle — the observation stream two replays are
/// compared by.
fn drive_and_observe(
    s: &mut dyn Session,
    outputs: &[String],
    base: u64,
    n: u64,
) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for c in 0..n {
        s.poke_u64("rst", u64::from((base + c) % 9 == 5)).unwrap();
        s.step(1).unwrap();
        rows.push(outputs.iter().map(|o| s.peek(o).unwrap()).collect());
    }
    rows
}

/// Snapshot mid-run, diverge, restore, and pin bit-identical replay —
/// on every engine preset and the persistent AoT session.
#[test]
fn snapshot_restore_roundtrip_on_every_backend() {
    let graph = gsim_designs::reset_synchronizer();
    let outputs = named_outputs(&graph);
    let mut sessions = preset_sessions(&graph, ALL_PRESETS);
    push_aot_session(&graph, &mut sessions);
    for (tag, s) in sessions.iter_mut() {
        // Warm up into a non-trivial state.
        drive_and_observe(s.as_mut(), &outputs, 0, 13);
        let snap = s.snapshot().unwrap();
        let cycle_at_snap = s.cycle();
        let counters_at_snap = s.counters().unwrap();
        // Diverge: different stimulus phase, then roll back.
        let diverged = drive_and_observe(s.as_mut(), &outputs, 100, 17);
        s.restore(snap).unwrap();
        assert_eq!(s.cycle(), cycle_at_snap, "{tag}: cycle after restore");
        assert_eq!(
            s.counters().unwrap(),
            counters_at_snap,
            "{tag}: counters after restore"
        );
        // Replay the *diverging* stimulus: bit-identical to the first
        // divergence (the snapshot captured the complete state).
        let replayed = drive_and_observe(s.as_mut(), &outputs, 100, 17);
        assert_eq!(replayed, diverged, "{tag}: replay after restore");
        // A second, older-state restore still works (snapshots are
        // retained, not popped).
        s.restore(snap).unwrap();
        let replayed2 = drive_and_observe(s.as_mut(), &outputs, 100, 17);
        assert_eq!(replayed2, diverged, "{tag}: second replay");
    }
}

/// A scripted interactive transcript — poke/step/peek/counters with
/// stimulus *reacting* to peeked outputs — executed verbatim against
/// every backend; the typed values read back must agree at every
/// point. This is the workload the batch-only AoT API could not serve
/// at all (each run restarted the process from cycle 0).
#[test]
fn interactive_transcript_agrees_across_backends() {
    /// One observation: (cycle, halt, result) after a step burst.
    type TranscriptRow = (u64, Option<u64>, Option<u64>);
    let graph = gsim_designs::stu_core();
    let program = gsim_workloads::programs::fib(8);
    let mut sessions = preset_sessions(&graph, &[Preset::Gsim, Preset::Verilator, Preset::GsimJit]);
    push_aot_session(&graph, &mut sessions);
    let mut transcripts: Vec<(String, Vec<TranscriptRow>)> = Vec::new();
    for (tag, s) in sessions.iter_mut() {
        s.load_mem("imem", &program.image).unwrap();
        s.poke_u64("reset", 1).unwrap();
        s.step(2).unwrap();
        s.poke_u64("reset", 0).unwrap();
        let mut rows = Vec::new();
        // Reactive loop: step in bursts until the CPU halts; the
        // stimulus (keep stepping or stop) depends on a peek.
        let mut ran = 0u64;
        while ran < program.max_cycles && s.peek_u64("halt").unwrap() != Some(1) {
            s.step(16).unwrap();
            ran += 16;
            rows.push((
                s.cycle(),
                s.peek_u64("halt").unwrap(),
                s.peek_u64("result").unwrap(),
            ));
        }
        assert_eq!(
            s.peek_u64("halt").unwrap(),
            Some(1),
            "{tag}: fib did not halt"
        );
        assert_eq!(
            s.peek_u64("result").unwrap(),
            Some(program.expected_result),
            "{tag}: architectural result"
        );
        transcripts.push((tag.clone(), rows));
    }
    let (first_tag, first) = &transcripts[0];
    for (tag, rows) in &transcripts[1..] {
        assert_eq!(rows, first, "transcript of {tag} diverged from {first_tag}");
    }
}

/// The unified error taxonomy: the same failure classes come back
/// from every backend — including across the AoT wire protocol.
#[test]
fn error_taxonomy_is_uniform_across_backends() {
    let graph = gsim_designs::stu_core();
    let mut sessions = preset_sessions(&graph, &[Preset::Gsim, Preset::GsimJit]);
    push_aot_session(&graph, &mut sessions);
    for (tag, s) in sessions.iter_mut() {
        assert_eq!(
            s.peek("nonesuch").unwrap_err(),
            GsimError::UnknownSignal("nonesuch".into()),
            "{tag}"
        );
        assert!(
            matches!(
                s.poke_u64("halt", 1).unwrap_err(),
                // The interpreter knows "halt" exists and is not an
                // input; the compiled poke table only knows inputs.
                GsimError::NotAnInput(_)
            ),
            "{tag}"
        );
        assert!(
            matches!(
                s.load_mem("nonesuch", &[1]).unwrap_err(),
                GsimError::UnknownMemory(_)
            ),
            "{tag}"
        );
        match s.load_mem("imem", &[0u64; 1 << 20]).unwrap_err() {
            // Both backends report the *real* bounds — the AoT wire
            // protocol carries depth/len on the err line.
            GsimError::MemImageTooLarge { depth, len, .. } => {
                assert!(depth > 0, "{tag}: depth lost");
                assert_eq!(len, 1 << 20, "{tag}: image length lost");
            }
            other => panic!("{tag}: expected MemImageTooLarge, got {other}"),
        }
        assert!(
            matches!(
                s.restore(gsim::SnapshotId::from_raw(u64::MAX)).unwrap_err(),
                GsimError::UnknownSnapshot(_)
            ),
            "{tag}"
        );
        // Scenario frames surface bad poke names as typed errors too.
        let err = s
            .run_scenario(&Scenario::new().frame(&[("nonesuch", 1)]))
            .unwrap_err();
        assert!(
            matches!(err, GsimError::UnknownSignal(_) | GsimError::NotAnInput(_)),
            "{tag}: {err}"
        );
        // The deprecated closure shim forwards through the same path
        // (pinned here until `run_driven` is removed).
        #[allow(deprecated)]
        let err = s
            .run_driven(2, &mut |_, frame| frame.set("nonesuch", 1))
            .unwrap_err();
        assert!(
            matches!(err, GsimError::UnknownSignal(_) | GsimError::NotAnInput(_)),
            "{tag}: {err}"
        );
    }
}

/// `build_session` is the single entry point both build paths converge
/// on: every engine choice yields a working session, and the legacy
/// `build()` refuses the AoT choice with a typed configuration error.
#[test]
fn build_session_covers_every_engine_choice() {
    let graph = gsim_designs::reset_synchronizer();
    let mut choices = vec![
        EngineChoice::FullCycle,
        EngineChoice::FullCycleMt(2),
        EngineChoice::Essential,
        EngineChoice::EssentialMt(2),
        EngineChoice::Threaded,
    ];
    if gsim_codegen::rustc_available() {
        choices.push(EngineChoice::Aot);
    }
    let mut peeks = Vec::new();
    for engine in choices {
        let mut s = Compiler::new(&graph)
            .preset(Preset::Gsim)
            .build_session(engine)
            .unwrap();
        s.run_scenario(
            &Scenario::new()
                .frame(&[("rst", 1)])
                .repeat(1)
                .frame(&[("rst", 0)])
                .repeat(17),
        )
        .unwrap();
        assert_eq!(s.cycle(), 20, "{}", s.backend());
        peeks.push((s.backend(), s.peek("out").unwrap()));
    }
    let (first_backend, first) = peeks[0].clone();
    for (backend, v) in &peeks[1..] {
        assert_eq!(v, &first, "{backend} disagrees with {first_backend}");
    }
    // The interpreter-only builder rejects the AoT choice with a typed
    // Config error instead of a stringly one.
    let err = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .options(gsim::OptOptions {
            engine: EngineChoice::Aot,
            ..gsim::OptOptions::all()
        })
        .build()
        .unwrap_err();
    assert!(matches!(err, GsimError::Config(_)), "{err}");
}

/// Introspection through the trait: every backend — interpreter
/// presets and the persistent AoT session, across its process
/// boundary via the `list` protocol command — reports the same
/// inputs, signals, and memories, in the same order.
#[test]
fn introspection_agrees_on_every_backend() {
    let graph = gsim_designs::reset_synchronizer();
    let mut sessions = preset_sessions(&graph, ALL_PRESETS);
    push_aot_session(&graph, &mut sessions);

    let (first_tag, first) = &mut sessions[0];
    let inputs = first.inputs().unwrap();
    let signals = first.signals().unwrap();
    let memories = first.memories().unwrap();
    assert!(!inputs.is_empty(), "{first_tag}: no inputs reported");
    assert!(!signals.is_empty(), "{first_tag}: no signals reported");
    // Every named output is peekable under its reported name and
    // width — introspection describes the real surface.
    for out in named_outputs(&graph) {
        let info = signals
            .iter()
            .find(|s| s.name == out)
            .unwrap_or_else(|| panic!("{first_tag}: output {out} missing from signals()"));
        let v = first.peek(&out).unwrap();
        assert_eq!(v.width(), info.width, "{first_tag}: width of {out}");
    }
    let first_tag = first_tag.clone();
    for (tag, s) in &mut sessions[1..] {
        assert_eq!(s.inputs().unwrap(), inputs, "{tag} vs {first_tag}: inputs");
        assert_eq!(
            s.signals().unwrap(),
            signals,
            "{tag} vs {first_tag}: signals"
        );
        assert_eq!(
            s.memories().unwrap(),
            memories,
            "{tag} vs {first_tag}: memories"
        );
    }
}
