//! The generic differential harness: every equivalence suite drives
//! its simulators through `&mut dyn Session`, so the same test body
//! covers the interpreter engines *and* the persistent AoT session
//! (one compiled process in `--serve` mode) without knowing which is
//! which. `RefInterp` stays outside the trait as the independent
//! golden model.

#![allow(dead_code)]

use gsim::{Compiler, EngineChoice, Preset, Session};
use gsim_graph::interp::RefInterp;
use gsim_graph::Graph;

/// Deterministic per-(cycle, lane) stimulus word (splitmix64).
pub fn stim_word(cycle: u64, lane: u64) -> u64 {
    let mut z = cycle
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(lane.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Every named output of `graph`, the signals the harness compares.
pub fn named_outputs(graph: &Graph) -> Vec<String> {
    graph
        .outputs()
        .iter()
        .map(|&o| graph.node(o).name.clone())
        .filter(|n| !n.is_empty())
        .collect()
}

/// Builds one session per interpreter preset, labelled by preset name.
pub fn preset_sessions(
    graph: &Graph,
    presets: &[Preset],
) -> Vec<(String, Box<dyn Session + 'static>)> {
    presets
        .iter()
        .map(|&p| {
            let (sim, _) = Compiler::new(graph).preset(p).build().unwrap();
            (p.name(), Box::new(sim) as Box<dyn Session>)
        })
        .collect()
}

/// Appends the persistent AoT session (the compiled binary in server
/// mode) to a session matrix, when the host has a `rustc`. Returns
/// `false` (and prints a note) when it does not, so suites can record
/// that the AoT column was skipped.
pub fn push_aot_session(
    graph: &Graph,
    sessions: &mut Vec<(String, Box<dyn Session + 'static>)>,
) -> bool {
    if !gsim_codegen::rustc_available() {
        eprintln!("note: rustc unavailable, AoT session left out of the matrix");
        return false;
    }
    let session = Compiler::new(graph)
        .preset(Preset::Gsim)
        .build_session(EngineChoice::Aot)
        .unwrap();
    sessions.push(("aot".into(), session));
    true
}

/// The load-bearing differential check: drives `RefInterp` and every
/// session over the same per-cycle stimulus and asserts every named
/// output is bit-identical (typed [`gsim_value::Value`] comparison,
/// not hex strings), cycle for cycle.
///
/// `frames[c]` is cycle `c`'s by-name pokes; cycles beyond the last
/// frame hold their inputs. `loads` are memory images applied before
/// cycle 0.
pub fn assert_sessions_match_reference(
    label: &str,
    graph: &Graph,
    sessions: &mut [(String, Box<dyn Session + 'static>)],
    cycles: u64,
    loads: &[(String, Vec<u64>)],
    frames: &[Vec<(String, u64)>],
) {
    let outputs = named_outputs(graph);
    assert!(!outputs.is_empty(), "{label}: design has no named outputs");
    let mut reference = RefInterp::new(graph).unwrap();
    for (mem, image) in loads {
        reference.load_mem(mem, image).unwrap();
        for (tag, s) in sessions.iter_mut() {
            s.load_mem(mem, image)
                .unwrap_or_else(|e| panic!("{label}/{tag}: load {mem}: {e}"));
        }
    }
    for cycle in 0..cycles {
        let frame = frames.get(cycle as usize);
        if let Some(frame) = frame {
            for (name, v) in frame {
                reference.poke_u64(name, *v).unwrap();
            }
        }
        reference.step();
        for (tag, s) in sessions.iter_mut() {
            if let Some(frame) = frame {
                for (name, v) in frame {
                    s.poke_u64(name, *v)
                        .unwrap_or_else(|e| panic!("{label}/{tag}: poke {name}: {e}"));
                }
            }
            s.step(1)
                .unwrap_or_else(|e| panic!("{label}/{tag}: step: {e}"));
            for out in &outputs {
                let got = s
                    .peek(out)
                    .unwrap_or_else(|e| panic!("{label}/{tag}: peek {out}: {e}"));
                let want = reference.peek(out).unwrap();
                assert_eq!(
                    &got,
                    want,
                    "{label}: backend {tag} ({}) diverged from RefInterp on {out} at cycle {cycle}",
                    s.backend()
                );
            }
        }
    }
    // Counter sanity through the trait: every backend maintains the
    // core semantic counters (plausible, not cross-backend-equal —
    // reset bookkeeping legitimately differs; see the AoT suite's
    // module docs).
    for (tag, s) in sessions.iter_mut() {
        let c = s
            .counters()
            .unwrap_or_else(|e| panic!("{label}/{tag}: counters: {e}"));
        assert!(
            c.cycles >= cycles,
            "{label}/{tag}: cycle counter {} below the {cycles} cycles run",
            c.cycles
        );
        // (supernode_evals stays engine-specific: the full-cycle
        // engines don't track it.)
        assert!(c.node_evals > 0, "{label}/{tag}: no node evals");
    }
}
