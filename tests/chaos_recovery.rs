//! Chaos suite for session supervision: deterministic faults
//! ([`gsim::FaultPlan`]) kill, stall, or `kill -9` the compiled AoT
//! child mid-run, and the tests pin the recovery contract — a
//! [`gsim::SupervisedSession`] comes back **bit-identical** to an
//! uninterrupted run (checked per cycle, per named output, against
//! `RefInterp`), and an unsupervised session surfaces the typed
//! [`gsim::GsimError::SessionLost`] / [`gsim::GsimError::Timeout`]
//! instead of hanging. All AoT tests skip (with a note) on hosts
//! without `rustc`.

mod common;

use common::{named_outputs, stim_word};
use gsim::{
    Compiler, FaultPlan, GsimError, Preset, Session, SessionFactory, SuperviseOptions,
    SupervisedSession,
};
use gsim_graph::interp::RefInterp;
use gsim_graph::Graph;

const DESIGN: &str = r#"
circuit ChaosDut :
  module ChaosDut :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<16>
    input b : UInt<16>
    output sum : UInt<17>
    output acc : UInt<16>
    output hi : UInt<16>
    reg r : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    reg h : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    r <= tail(add(r, xor(a, b)), 1)
    h <= mux(gt(a, b), a, b)
    sum <= add(a, b)
    acc <= r
    hi <= h
"#;

fn dut_graph() -> Graph {
    gsim_firrtl::compile(DESIGN).expect("compiles")
}

/// Cycle `c`'s stimulus, shared by the faulty run and the reference.
fn frame_at(c: u64) -> Vec<(String, u64)> {
    vec![
        ("reset".to_string(), u64::from(c % 13 == 9)),
        ("a".to_string(), stim_word(c, 1) & 0xffff),
        ("b".to_string(), stim_word(c, 2) & 0xffff),
    ]
}

/// Drives `s` and a fresh `RefInterp` over the same stimulus and
/// asserts every named output is bit-identical every cycle — the
/// supervised run under fault injection must be indistinguishable
/// from a run that never crashed.
fn assert_bit_identical(label: &str, graph: &Graph, s: &mut dyn Session, cycles: u64) {
    let outputs = named_outputs(graph);
    let mut reference = RefInterp::new(graph).unwrap();
    for c in 0..cycles {
        for (name, v) in frame_at(c) {
            reference.poke_u64(&name, v).unwrap();
            s.poke_u64(&name, v)
                .unwrap_or_else(|e| panic!("{label}: poke {name} at cycle {c}: {e}"));
        }
        reference.step();
        s.step(1)
            .unwrap_or_else(|e| panic!("{label}: step at cycle {c}: {e}"));
        for out in &outputs {
            let got = s
                .peek(out)
                .unwrap_or_else(|e| panic!("{label}: peek {out} at cycle {c}: {e}"));
            assert_eq!(
                &got,
                reference.peek(out).unwrap(),
                "{label}: {out} diverged from RefInterp at cycle {c}"
            );
        }
    }
}

/// A factory over one compiled artifact: the first spawn carries the
/// fault plan, respawns come up clean (mirroring the server's
/// first-spawn-only policy — recovery must not re-inherit the fault).
fn faulty_factory(sim: gsim::AotSim, first_plan: FaultPlan) -> SessionFactory {
    let mut first = true;
    Box::new(move || {
        let plan = if first {
            first = false;
            first_plan.clone()
        } else {
            FaultPlan::default()
        };
        let sess = sim.session_with(None, &plan)?;
        Ok(Box::new(sess) as Box<dyn Session>)
    })
}

/// The tentpole chaos check: the AoT child is killed mid-run and the
/// supervisor's respawn + checkpoint import + journal replay must be
/// invisible — every output of every cycle still matches `RefInterp`.
#[test]
fn supervisor_recovers_bit_identical_after_child_kill() {
    if !gsim_codegen::rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let graph = dut_graph();
    let (sim, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();
    let plan = FaultPlan {
        kill_child_at_cycle: Some(40),
        ..FaultPlan::default()
    };
    let mut sup = SupervisedSession::new(
        faulty_factory(sim, plan),
        SuperviseOptions {
            checkpoint_every: 16,
            max_recoveries: 3,
        },
    )
    .unwrap();
    assert!(sup.exportable(), "AoT sessions support state export");

    assert_bit_identical("chaos/kill", &graph, &mut sup, 96);

    assert_eq!(sup.recoveries(), 1, "exactly one recovery for one kill");
    let stats = sup.last_recovery().expect("recovery stats recorded");
    assert_eq!(stats.trigger, "session-lost", "a dead child, not a stall");
    assert!(
        stats.replayed_cycles <= 16,
        "replay bounded by the checkpoint period, got {}",
        stats.replayed_cycles
    );
}

/// A stalled child (responsive process, silent wire) trips the
/// per-operation deadline instead of hanging, and the supervisor
/// recovers from the timeout exactly as it does from a death.
#[test]
fn supervisor_recovers_from_a_stalled_child() {
    if !gsim_codegen::rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let graph = dut_graph();
    let (sim, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();
    let plan = FaultPlan {
        stall_child_at_cycle: Some(20),
        ..FaultPlan::default()
    };
    let mut first = true;
    let factory: SessionFactory = Box::new(move || {
        let p = if first {
            first = false;
            plan.clone()
        } else {
            FaultPlan::default()
        };
        let mut sess = sim.session_with(None, &p)?;
        // Short deadline so the injected stall surfaces quickly.
        sess.set_deadline(std::time::Duration::from_millis(250));
        Ok(Box::new(sess) as Box<dyn Session>)
    });
    let mut sup = SupervisedSession::new(
        factory,
        SuperviseOptions {
            checkpoint_every: 8,
            max_recoveries: 2,
        },
    )
    .unwrap();

    assert_bit_identical("chaos/stall", &graph, &mut sup, 48);

    assert_eq!(sup.recoveries(), 1);
    assert_eq!(
        sup.last_recovery().unwrap().trigger,
        "timeout",
        "a stall is detected by the deadline, not by EOF"
    );
}

/// An *unsupervised* session must not hang on a real `kill -9`: the
/// very next operation comes back as a typed `SessionLost`, and the
/// session stays poisoned (fail-fast) from then on.
#[test]
fn sigkilled_child_surfaces_session_lost() {
    if !gsim_codegen::rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let graph = dut_graph();
    let (sim, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();
    let mut s = sim.session().unwrap();
    s.poke_u64("a", 3).unwrap();
    s.step(4).unwrap();

    let status = std::process::Command::new("kill")
        .args(["-9", &s.child_id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -9 delivered");

    let err = s.peek("sum").unwrap_err();
    assert!(
        matches!(err, GsimError::SessionLost(_)),
        "expected SessionLost, got {err}"
    );
    // Poisoned: every further operation fails fast with the same class.
    let again = s.peek("sum").unwrap_err();
    assert!(matches!(again, GsimError::SessionLost(_)), "{again}");
}

/// An unsupervised session against a stalled (not dead) child: the
/// operation deadline converts the hang into a typed `Timeout`.
#[test]
fn stalled_child_hits_the_deadline() {
    if !gsim_codegen::rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let graph = dut_graph();
    let (sim, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();
    let plan = FaultPlan {
        stall_child_at_cycle: Some(4),
        ..FaultPlan::default()
    };
    let mut s = sim.session_with(None, &plan).unwrap();
    s.set_deadline(std::time::Duration::from_millis(250));
    s.poke_u64("a", 1).unwrap();

    let err = s
        .step(8)
        .and_then(|()| s.peek("sum").map(|_| ()))
        .unwrap_err();
    assert!(
        matches!(err, GsimError::Timeout(_)),
        "expected Timeout, got {err}"
    );
    assert!(err.is_fatal(), "a deadline expiry poisons the session");
}

/// `export_state` / `import_state` round trip between two independent
/// AoT child processes: the imported session continues bit-identical
/// to the exporter — the primitive supervision's checkpoints rely on.
#[test]
fn state_round_trips_across_processes() {
    if !gsim_codegen::rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let graph = dut_graph();
    let outputs = named_outputs(&graph);
    let (sim, _) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build_aot()
        .unwrap();

    let mut a = sim.session().unwrap();
    for c in 0..20 {
        for (name, v) in frame_at(c) {
            a.poke_u64(&name, v).unwrap();
        }
        a.step(1).unwrap();
    }
    let blob = a
        .export_state()
        .unwrap()
        .expect("AoT sessions export state");

    let mut b = sim.session().unwrap();
    b.import_state(&blob).unwrap();
    assert_eq!(b.cycle(), a.cycle(), "cycle counter travels in the state");
    assert_eq!(b.counters().unwrap(), a.counters().unwrap());

    // Both timelines continue identically from the shared state.
    for c in 20..40 {
        for (name, v) in frame_at(c) {
            a.poke_u64(&name, v).unwrap();
            b.poke_u64(&name, v).unwrap();
        }
        a.step(1).unwrap();
        b.step(1).unwrap();
        for out in &outputs {
            assert_eq!(
                a.peek(out).unwrap(),
                b.peek(out).unwrap(),
                "{out} diverged after import at cycle {c}"
            );
        }
    }
}
