//! Integration coverage of FIRRTL front-end features, each compiled and
//! simulated end-to-end on the GSIM engine.

use gsim::{Compiler, Preset};
use gsim_value::Value;

fn sim_of(src: &str) -> gsim::Simulator {
    let graph = gsim_firrtl::compile(src).expect("compiles");
    Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build()
        .unwrap()
        .0
}

#[test]
fn deep_module_hierarchy_flattens() {
    let mut sim = sim_of(
        r#"
circuit Top :
  module Leaf :
    input x : UInt<8>
    output y : UInt<8>
    y <= tail(add(x, UInt<8>(1)), 1)
  module Mid :
    input x : UInt<8>
    output y : UInt<8>
    inst a of Leaf
    inst b of Leaf
    a.x <= x
    b.x <= a.y
    y <= b.y
  module Top :
    input v : UInt<8>
    output w : UInt<8>
    inst m0 of Mid
    inst m1 of Mid
    m0.x <= v
    m1.x <= m0.y
    w <= m1.y
"#,
    );
    sim.poke_u64("v", 10).unwrap();
    sim.step();
    assert_eq!(sim.peek_u64("w"), Some(14)); // four +1 leaves
}

#[test]
fn hierarchical_names_visible_without_optimization() {
    // The GSIM preset legitimately inlines internal nodes away; an
    // unoptimized build keeps every hierarchical name peekable.
    let graph = gsim_firrtl::compile(
        r#"
circuit Top :
  module Leaf :
    input x : UInt<8>
    output y : UInt<8>
    y <= tail(add(x, UInt<8>(1)), 1)
  module Top :
    input v : UInt<8>
    output w : UInt<8>
    inst a of Leaf
    a.x <= v
    w <= a.y
"#,
    )
    .unwrap();
    let (mut sim, _) = Compiler::new(&graph)
        .preset(Preset::Verilator)
        .build()
        .unwrap();
    sim.poke_u64("v", 10).unwrap();
    sim.step();
    assert_eq!(sim.peek_u64("a.x"), Some(10));
    assert_eq!(sim.peek_u64("a.y"), Some(11));
}

#[test]
fn signed_datapath() {
    let mut sim = sim_of(
        r#"
circuit S :
  module S :
    input a : SInt<8>
    input b : SInt<8>
    output min : SInt<8>
    output mag : UInt<8>
    node a_lt_b = lt(a, b)
    min <= mux(a_lt_b, a, b)
    node neg_min = neg(mux(a_lt_b, a, b))
    mag <= asUInt(bits(mux(lt(mux(a_lt_b, a, b), SInt<8>(0)), neg_min, pad(mux(a_lt_b, a, b), 9)), 7, 0))
"#,
    );
    sim.poke("a", Value::from_i64(-100, 8)).unwrap();
    sim.poke("b", Value::from_i64(25, 8)).unwrap();
    sim.step();
    assert_eq!(sim.peek("min").unwrap().to_i128(), Some(-100));
    assert_eq!(sim.peek_u64("mag"), Some(100));
}

#[test]
fn wide_datapath_through_engine() {
    let mut sim = sim_of(
        r#"
circuit W :
  module W :
    input clock : Clock
    input lo : UInt<64>
    input hi : UInt<64>
    output sum_hi : UInt<64>
    reg acc : UInt<128>, clock
    node word = cat(hi, lo)
    acc <= tail(add(acc, word), 1)
    sum_hi <= bits(acc, 127, 64)
"#,
    );
    sim.poke_u64("lo", u64::MAX).unwrap();
    sim.poke_u64("hi", 1).unwrap();
    for _ in 0..4 {
        sim.step();
    }
    // acc after 3 commits visible on the 4th evaluation:
    // 3 * (2^64 + (2^64 - 1)) = 3*2^65 - 3 -> high word = 5 (carry!)
    assert_eq!(sim.peek_u64("sum_hi"), Some(5));
}

#[test]
fn dynamic_shifts_and_one_hot_decoder() {
    let mut sim = sim_of(
        r#"
circuit D :
  module D :
    input sel : UInt<3>
    output hot : UInt<8>
    output bit2 : UInt<1>
    node oh = dshl(UInt<1>(1), sel)
    hot <= bits(oh, 7, 0)
    bit2 <= bits(oh, 2, 2)
"#,
    );
    for s in 0..8u64 {
        sim.poke_u64("sel", s).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("hot"), Some(1 << s));
        assert_eq!(sim.peek_u64("bit2"), Some(u64::from(s == 2)));
    }
}

#[test]
fn multiple_reset_domains() {
    let mut sim = sim_of(
        r#"
circuit M :
  module M :
    input clock : Clock
    input rst_a : UInt<1>
    input rst_b : UInt<1>
    output qa : UInt<8>
    output qb : UInt<8>
    reg ca : UInt<8>, clock with : (reset => (rst_a, UInt<8>(0)))
    reg cb : UInt<8>, clock with : (reset => (rst_b, UInt<8>(100)))
    ca <= tail(add(ca, UInt<8>(1)), 1)
    cb <= tail(add(cb, UInt<8>(1)), 1)
    qa <= ca
    qb <= cb
"#,
    );
    sim.run(5);
    sim.poke_u64("rst_a", 1).unwrap();
    sim.step();
    sim.poke_u64("rst_a", 0).unwrap();
    sim.step();
    // ca reset to 0 then +1; cb kept counting from 0 (never reset to 100)
    assert_eq!(sim.peek_u64("qa"), Some(0));
    assert!(sim.peek_u64("qb").unwrap() > 5);
    sim.poke_u64("rst_b", 1).unwrap();
    sim.step();
    sim.poke_u64("rst_b", 0).unwrap();
    sim.step();
    assert_eq!(sim.peek_u64("qb"), Some(100));
}

#[test]
fn validif_and_invalid_default_to_defined_values() {
    let mut sim = sim_of(
        r#"
circuit V :
  module V :
    input c : UInt<1>
    input x : UInt<8>
    output y : UInt<8>
    output z : UInt<8>
    wire w : UInt<8>
    w is invalid
    y <= validif(c, x)
    z <= w
"#,
    );
    sim.poke_u64("c", 0).unwrap();
    sim.poke_u64("x", 77).unwrap();
    sim.step();
    assert_eq!(sim.peek_u64("y"), Some(77), "validif passes the value");
    assert_eq!(sim.peek_u64("z"), Some(0), "invalid reads as zero");
}

#[test]
fn sequential_read_memory() {
    let mut sim = sim_of(
        r#"
circuit Q :
  module Q :
    input clock : Clock
    input addr : UInt<2>
    output q : UInt<8>
    mem sram :
      data-type => UInt<8>
      depth => 4
      read-latency => 1
      write-latency => 1
      reader => r
    sram.r.addr <= addr
    sram.r.en <= UInt<1>(1)
    q <= sram.r.data
"#,
    );
    sim.load_mem("sram", &[11, 22, 33, 44]).unwrap();
    sim.poke_u64("addr", 2).unwrap();
    sim.step(); // address registered at this edge
    sim.poke_u64("addr", 0).unwrap();
    sim.step(); // read uses the registered address (2)
    assert_eq!(sim.peek_u64("q"), Some(33));
    sim.step();
    assert_eq!(sim.peek_u64("q"), Some(11));
}
